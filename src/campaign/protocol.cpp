#include "campaign/protocol.h"

#include <cstring>
#include <sstream>

#include "common/binio.h"
#include "sweep/point_record.h"

namespace coyote::campaign {

namespace {

/// Wraps a BinWriter-built payload into a typed frame.
class PayloadWriter {
 public:
  PayloadWriter() : writer_(stream_) {}
  BinWriter& w() { return writer_; }
  Frame finish(FrameType type) && {
    return Frame{type, std::move(stream_).str()};
  }

 private:
  std::ostringstream stream_;
  BinWriter writer_;
};

/// Bounds-checked reader over a frame's payload; verifies the type first
/// and full consumption last, so a short or over-long payload is always a
/// ProtocolError, never silent garbage.
class PayloadReader {
 public:
  PayloadReader(const Frame& frame, FrameType expect)
      : stream_(frame.payload), reader_(stream_), size_(frame.payload.size()) {
    if (frame.type != expect) {
      throw ProtocolError(strfmt("unexpected frame type %u (wanted %u)",
                                 static_cast<unsigned>(frame.type),
                                 static_cast<unsigned>(expect)));
    }
  }

  BinReader& r() { return reader_; }

  void finish() {
    if (reader_.offset() != size_) {
      throw ProtocolError(strfmt(
          "frame payload has %llu trailing bytes",
          static_cast<unsigned long long>(size_ - reader_.offset())));
    }
  }

 private:
  std::istringstream stream_;
  BinReader reader_;
  std::uint64_t size_;
};

void write_config_map(BinWriter& w, const simfw::ConfigMap& map) {
  w.u64(map.values().size());
  for (const auto& [key, value] : map.values()) {
    w.str(key);
    w.str(value);
  }
}

simfw::ConfigMap read_config_map(BinReader& r) {
  simfw::ConfigMap map;
  const std::uint64_t num_keys = r.count(1 << 20);
  for (std::uint64_t i = 0; i < num_keys; ++i) {
    const std::string key = r.str();
    map.set(key, r.str());
  }
  return map;
}

template <typename Fn>
auto parse_payload(const Frame& frame, FrameType expect, Fn&& body) {
  try {
    PayloadReader payload(frame, expect);
    auto value = body(payload.r());
    payload.finish();
    return value;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    // Truncated payloads surface as binio SimErrors; rebrand them so the
    // caller knows the *connection* is bad, not the campaign.
    throw ProtocolError(std::string("malformed frame payload: ") + e.what());
  }
}

/// FNV-1a-32 over the frame's type byte and payload — the per-frame
/// integrity check. Not cryptographic; it exists to turn wire corruption
/// (flipped bits, spliced streams) into a loud ProtocolError instead of a
/// silently wrong result record.
std::uint32_t frame_checksum(FrameType type, const std::string& payload) {
  std::uint32_t hash = 2166136261u;
  const auto mix = [&hash](std::uint8_t byte) {
    hash ^= byte;
    hash *= 16777619u;
  };
  mix(static_cast<std::uint8_t>(type));
  for (const char c : payload) mix(static_cast<std::uint8_t>(c));
  return hash;
}

/// Frame overhead after the length prefix: type byte + trailing checksum.
constexpr std::uint32_t kFrameOverhead = 1 + 4;

}  // namespace

std::string encode_frame(const Frame& frame) {
  const std::uint64_t length = frame.payload.size() + kFrameOverhead;
  if (length > kMaxFrameBytes) {
    throw ProtocolError(strfmt("frame too large (%llu bytes)",
                               static_cast<unsigned long long>(length)));
  }
  std::string wire;
  wire.reserve(4 + length);
  for (unsigned i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((length >> (8 * i)) & 0xFF));
  }
  wire.push_back(static_cast<char>(frame.type));
  wire += frame.payload;
  const std::uint32_t checksum = frame_checksum(frame.type, frame.payload);
  for (unsigned i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((checksum >> (8 * i)) & 0xFF));
  }
  return wire;
}

void FrameDecoder::feed(const void* data, std::size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

std::optional<Frame> FrameDecoder::next() {
  // Reclaim consumed prefix occasionally so a long-lived connection never
  // grows the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > (1u << 20)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::nullopt;
  std::uint32_t length = 0;
  for (unsigned i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(
                  static_cast<std::uint8_t>(buffer_[consumed_ + i]))
              << (8 * i);
  }
  if (length < kFrameOverhead) {
    throw ProtocolError(strfmt("undersized frame (%u bytes < %u minimum)",
                               length, kFrameOverhead));
  }
  if (length > kMaxFrameBytes) {
    throw ProtocolError(strfmt("oversized frame (%u bytes > %u max)",
                               length, kMaxFrameBytes));
  }
  if (available < 4u + length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(buffer_[consumed_ + 4]);
  frame.payload.assign(buffer_, consumed_ + 5, length - kFrameOverhead);
  std::uint32_t declared = 0;
  const std::size_t checksum_at = consumed_ + 4 + length - 4;
  for (unsigned i = 0; i < 4; ++i) {
    declared |= static_cast<std::uint32_t>(
                    static_cast<std::uint8_t>(buffer_[checksum_at + i]))
                << (8 * i);
  }
  if (declared != frame_checksum(frame.type, frame.payload)) {
    throw ProtocolError(
        strfmt("frame checksum mismatch (type %u, %zu payload bytes) — "
               "corrupt stream",
               static_cast<unsigned>(frame.type), frame.payload.size()));
  }
  consumed_ += 4u + length;
  return frame;
}

Frame encode_hello(const HelloFrame& hello) {
  PayloadWriter p;
  p.w().u32(hello.protocol);
  p.w().str(hello.worker);
  return std::move(p).finish(FrameType::kHello);
}

Frame encode_welcome(const WelcomeFrame& welcome) {
  PayloadWriter p;
  p.w().u32(welcome.protocol);
  p.w().str(welcome.campaign);
  p.w().u64(welcome.heartbeat_ms);
  p.w().u64(welcome.lease_ms);
  p.w().u64(welcome.max_cycles);
  p.w().u32(welcome.max_attempts);
  return std::move(p).finish(FrameType::kWelcome);
}

Frame encode_request() { return Frame{FrameType::kRequest, {}}; }

Frame encode_assign(const AssignFrame& assign) {
  PayloadWriter p;
  p.w().u64(assign.index);
  write_config_map(p.w(), assign.config);
  return std::move(p).finish(FrameType::kAssign);
}

Frame encode_no_work() { return Frame{FrameType::kNoWork, {}}; }

Frame encode_heartbeat(const IndexFrame& heartbeat) {
  PayloadWriter p;
  p.w().u64(heartbeat.index);
  return std::move(p).finish(FrameType::kHeartbeat);
}

Frame encode_heartbeat_ack(const IndexFrame& ack) {
  PayloadWriter p;
  p.w().u64(ack.index);
  return std::move(p).finish(FrameType::kHeartbeatAck);
}

Frame encode_progress(const ProgressFrame& progress) {
  PayloadWriter p;
  p.w().u64(progress.index);
  p.w().str(progress.phase);
  p.w().u64(progress.value);
  return std::move(p).finish(FrameType::kProgress);
}

Frame encode_result(const ResultFrame& result) {
  PayloadWriter p;
  p.w().u64(result.index);
  sweep::write_point_record(p.w(), result.point);
  return std::move(p).finish(FrameType::kResult);
}

Frame encode_error(const ErrorFrame& error) {
  PayloadWriter p;
  p.w().u32(static_cast<std::uint32_t>(error.code));
  p.w().str(error.message);
  return std::move(p).finish(FrameType::kError);
}

Frame encode_shutdown(const ShutdownFrame& shutdown) {
  PayloadWriter p;
  p.w().u32(static_cast<std::uint32_t>(shutdown.reason));
  p.w().str(shutdown.message);
  return std::move(p).finish(FrameType::kShutdown);
}

HelloFrame parse_hello(const Frame& frame) {
  return parse_payload(frame, FrameType::kHello, [](BinReader& r) {
    HelloFrame hello;
    hello.protocol = r.u32();
    hello.worker = r.str();
    return hello;
  });
}

WelcomeFrame parse_welcome(const Frame& frame) {
  return parse_payload(frame, FrameType::kWelcome, [](BinReader& r) {
    WelcomeFrame welcome;
    welcome.protocol = r.u32();
    welcome.campaign = r.str();
    welcome.heartbeat_ms = r.u64();
    welcome.lease_ms = r.u64();
    welcome.max_cycles = r.u64();
    welcome.max_attempts = r.u32();
    return welcome;
  });
}

AssignFrame parse_assign(const Frame& frame) {
  return parse_payload(frame, FrameType::kAssign, [](BinReader& r) {
    AssignFrame assign;
    assign.index = r.u64();
    assign.config = read_config_map(r);
    return assign;
  });
}

IndexFrame parse_heartbeat(const Frame& frame) {
  return parse_payload(frame, FrameType::kHeartbeat, [](BinReader& r) {
    return IndexFrame{r.u64()};
  });
}

IndexFrame parse_heartbeat_ack(const Frame& frame) {
  return parse_payload(frame, FrameType::kHeartbeatAck, [](BinReader& r) {
    return IndexFrame{r.u64()};
  });
}

ProgressFrame parse_progress(const Frame& frame) {
  return parse_payload(frame, FrameType::kProgress, [](BinReader& r) {
    ProgressFrame progress;
    progress.index = r.u64();
    progress.phase = r.str();
    progress.value = r.u64();
    return progress;
  });
}

ResultFrame parse_result(const Frame& frame) {
  return parse_payload(frame, FrameType::kResult, [](BinReader& r) {
    ResultFrame result;
    result.index = r.u64();
    sweep::read_point_record(r, result.point);
    result.point.index = result.index;
    return result;
  });
}

ErrorFrame parse_error(const Frame& frame) {
  return parse_payload(frame, FrameType::kError, [](BinReader& r) {
    ErrorFrame error;
    error.code = static_cast<ErrorCode>(r.u32());
    error.message = r.str();
    return error;
  });
}

ShutdownFrame parse_shutdown(const Frame& frame) {
  return parse_payload(frame, FrameType::kShutdown, [](BinReader& r) {
    ShutdownFrame shutdown;
    shutdown.reason = static_cast<ShutdownReason>(r.u32());
    shutdown.message = r.str();
    return shutdown;
  });
}

}  // namespace coyote::campaign
