#include "campaign/lease.h"

namespace coyote::campaign {

Clock steady_clock() {
  return [] { return std::chrono::steady_clock::now(); };
}

LeaseTable::LeaseTable(std::size_t num_points,
                       std::chrono::milliseconds lease_duration)
    : num_points_(num_points), lease_duration_(lease_duration) {
  for (std::size_t i = 0; i < num_points; ++i) pending_.insert(i);
}

std::optional<std::size_t> LeaseTable::acquire(std::uint64_t worker,
                                               TimePoint now) {
  if (pending_.empty()) return std::nullopt;
  const std::size_t point = *pending_.begin();
  pending_.erase(pending_.begin());
  leased_[point] = Lease{worker, now + lease_duration_};
  return point;
}

bool LeaseTable::renew(std::size_t point, std::uint64_t worker,
                       TimePoint now) {
  const auto it = leased_.find(point);
  if (it == leased_.end() || it->second.worker != worker) return false;
  it->second.deadline = now + lease_duration_;
  return true;
}

bool LeaseTable::complete(std::size_t point) {
  if (point >= num_points_) return false;
  if (pending_.erase(point) == 0 && leased_.erase(point) == 0) {
    return false;  // already done: a forfeited worker's duplicate result
  }
  num_done_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<std::size_t> LeaseTable::release_worker(std::uint64_t worker) {
  for (auto it = leased_.begin(); it != leased_.end(); ++it) {
    if (it->second.worker == worker) {
      const std::size_t point = it->first;
      leased_.erase(it);
      pending_.insert(point);
      return point;
    }
  }
  return std::nullopt;
}

std::vector<std::size_t> LeaseTable::expire(TimePoint now) {
  std::vector<std::size_t> expired;
  for (auto it = leased_.begin(); it != leased_.end();) {
    if (it->second.deadline <= now) {
      expired.push_back(it->first);
      pending_.insert(it->first);
      it = leased_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;  // map order: already ascending
}

std::optional<TimePoint> LeaseTable::next_deadline() const {
  std::optional<TimePoint> earliest;
  for (const auto& [point, lease] : leased_) {
    if (!earliest || lease.deadline < *earliest) earliest = lease.deadline;
  }
  return earliest;
}

}  // namespace coyote::campaign
