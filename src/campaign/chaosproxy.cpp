#include "campaign/chaosproxy.h"

#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/error.h"

namespace coyote::campaign {

namespace {

/// Closes with SO_LINGER 0 so the peer sees a genuine RST, not a tidy FIN
/// — the difference between "campaign over" and "connection yanked".
void abort_close(Socket& sock) {
  if (!sock.valid()) return;
  const linger hard{1, 0};
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
  sock.close();
}

}  // namespace

ChaosProxy::ChaosProxy(Options options)
    : options_(std::move(options)), rng_(options_.seed) {}

std::uint16_t ChaosProxy::listen(const std::string& host,
                                 std::uint16_t port) {
  listener_ = Socket::listen_tcp(host, port);
  return listener_.local_port();
}

void ChaosProxy::run() {
  if (!listener_.valid()) {
    throw SimError("chaos proxy: run() called before listen()");
  }
  while (!stop_.load(std::memory_order_relaxed)) tick(50);
  for (auto& [id, link] : links_) reset_link(link);
  links_.clear();
}

void ChaosProxy::reset_link(Link& link) {
  abort_close(link.client);
  abort_close(link.upstream);
}

bool ChaosProxy::shuttle(Socket& src, Socket& dst, bool& cut,
                         bool* reset_out) {
  char buf[4096];
  const long n = src.read_some(buf, sizeof buf);
  if (n == 0) return true;   // spurious wakeup
  if (n < 0) return false;   // endpoint closed: tear the link down
  auto size = static_cast<std::size_t>(n);
  ++stats_.chunks;
  stats_.bytes += size;

  // Draw every decision every chunk, enabled or not, so the decision
  // sequence is a pure function of the seed — turning one fault class on
  // does not reshuffle the others.
  const bool delay = rng_.below(1000) < options_.delay_pmil;
  const bool reset = rng_.below(1000) < options_.reset_pmil;
  const bool partition = rng_.below(1000) < options_.partition_pmil;
  const bool truncate = rng_.below(1000) < options_.truncate_pmil;
  const bool duplicate = rng_.below(1000) < options_.duplicate_pmil;
  const bool bitflip = rng_.below(1000) < options_.bitflip_pmil;
  const std::uint64_t delay_ms = 1 + rng_.below(
      std::max<std::uint64_t>(options_.delay_max_ms, 1));
  const std::uint64_t cut_at = rng_.below(size);
  const std::uint64_t flip_bit = rng_.below(size * 8);

  if (delay) {
    ++stats_.delays;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (reset) {
    ++stats_.resets;
    *reset_out = true;
    return false;
  }
  if (partition && !cut) {
    // Half-open from here on: this direction silently swallows everything
    // (this chunk included); the reverse direction keeps flowing.
    ++stats_.partitions;
    cut = true;
  }
  if (cut) return true;
  if (bitflip) {
    ++stats_.bitflips;
    buf[flip_bit / 8] ^= static_cast<char>(1u << (flip_bit % 8));
  }
  if (truncate) {
    // Forward an arbitrary prefix — possibly zero bytes, possibly cutting
    // a length word or payload in half — then yank the connection.
    ++stats_.truncations;
    *reset_out = true;
    if (cut_at > 0) dst.write_all(buf, static_cast<std::size_t>(cut_at));
    return false;
  }
  if (!dst.write_all(buf, size)) return false;
  if (duplicate) {
    ++stats_.duplications;
    if (!dst.write_all(buf, size)) return false;
  }
  return true;
}

void ChaosProxy::tick(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> ids;
  fds.reserve(links_.size() * 2 + 1);
  fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
  for (auto& [id, link] : links_) {
    fds.push_back(pollfd{link.client.fd(), POLLIN, 0});
    fds.push_back(pollfd{link.upstream.fd(), POLLIN, 0});
    ids.push_back(id);
  }
  ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

  if ((fds[0].revents & POLLIN) != 0) {
    while (true) {
      Socket client = listener_.accept_conn();
      if (!client.valid()) break;
      Link link;
      link.client = std::move(client);
      try {
        link.upstream = Socket::connect_tcp(options_.upstream_host,
                                            options_.upstream_port);
      } catch (const std::exception&) {
        abort_close(link.client);  // broker down: client sees a reset
        continue;
      }
      link.client.set_nonblocking(true);
      link.upstream.set_nonblocking(true);
      ++stats_.connections;
      links_.emplace(next_link_id_++, std::move(link));
    }
  }

  std::vector<std::uint64_t> dead;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const auto it = links_.find(ids[k]);
    if (it == links_.end()) continue;
    Link& link = it->second;
    bool alive = true;
    bool reset = false;
    if ((fds[1 + 2 * k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      alive = shuttle(link.client, link.upstream,
                      link.client_to_upstream_cut, &reset);
    }
    if (alive &&
        (fds[2 + 2 * k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      alive = shuttle(link.upstream, link.client,
                      link.upstream_to_client_cut, &reset);
    }
    if (!alive) {
      if (reset) {
        reset_link(link);
      } else {
        // One endpoint closed normally: propagate the FIN rather than
        // faking a fault the seed did not ask for.
        link.client.close();
        link.upstream.close();
      }
      dead.push_back(ids[k]);
    }
  }
  for (const std::uint64_t id : dead) links_.erase(id);
}

}  // namespace coyote::campaign
