// The campaign service's wire protocol: a checksummed length-prefixed
// framing over TCP (or any byte stream), carrying the broker/worker
// conversation that shards campaign points across processes and hosts.
//
//   frame := u32 length   (LE, bytes after this field, 5..kMaxFrameBytes)
//            u8  type     (FrameType)
//            payload      (length-5 bytes, BinWriter little-endian encoding)
//            u32 checksum (LE FNV-1a-32 over type byte + payload)
//
// The checksum is the campaign's integrity floor: a payload bit flipped
// anywhere between two healthy peers (bad NIC, misbehaving middlebox, the
// chaos proxy in tests) is a ProtocolError for that connection, never a
// silently corrupted result record in the table.
//
// The conversation:
//
//   worker                           broker
//   ------                           ------
//   HELLO {proto, name}        →
//                              ←     WELCOME {proto, campaign, timings,
//                                             execution options}
//                                    (or ERROR {code, message} and close —
//                                     protocol mismatch, quarantine)
//   REQUEST                    →
//                              ←     ASSIGN {index, raw config map}
//                                    (no point free → parked until work
//                                     frees up; NO_WORK while the broker
//                                     is draining — "stand by, nothing for
//                                     you"; SHUTDOWN {complete} once the
//                                     campaign is done)
//   HEARTBEAT {index}          →     (every heartbeat_ms while running —
//                              ←     HEARTBEAT_ACK {index}    renews the
//                                    point's lease; index == kPingIndex is
//                                    a liveness probe from a parked worker
//                                    and renews nothing)
//   PROGRESS {index, phase,    →     (status stream for long points)
//             value}
//   RESULT {index, record}     →     (the shared point record; then the
//                                     worker REQUESTs again)
//                              ←     SHUTDOWN {reason, message}
//                                    (broadcast: kCampaignComplete = go
//                                     home happy; kDraining = the broker
//                                     is restarting, re-dial with backoff)
//
// A worker that disconnects or misses its lease deadline forfeits the
// point; the broker deterministically reassigns it (lowest index first) to
// the next requesting worker. Both endpoints treat any malformed frame as
// fatal for that connection only — the broker answers with a typed ERROR
// before closing, and quarantines addresses that repeat-offend.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "simfw/params.h"
#include "sweep/sweep.h"

namespace coyote::campaign {

/// Bumped on any incompatible frame-layout change; HELLO/WELCOME carry it
/// and mismatched peers refuse each other with a typed ERROR frame (sent
/// before close, so the refused side knows *why*) instead of a silent
/// drop. v2 added the per-frame checksum and the ERROR/SHUTDOWN pair.
inline constexpr std::uint32_t kProtocolVersion = 2;

/// HEARTBEAT index used by a parked worker as a pure liveness probe: the
/// broker acks it without renewing any lease. Lets an idle worker tell "my
/// broker is slow" from "my broker's host silently died".
inline constexpr std::uint64_t kPingIndex = ~std::uint64_t{0};

/// Upper bound on a frame's declared size. Configs and point records are
/// kilobytes; anything bigger is a corrupt or hostile stream and the
/// connection is dropped before allocating.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// A malformed or out-of-contract frame. Fatal for the connection that
/// produced it, never for the campaign.
class ProtocolError : public SimError {
 public:
  explicit ProtocolError(std::string what) : SimError(std::move(what)) {}
};

enum class FrameType : std::uint8_t {
  kHello = 1,
  kWelcome = 2,
  kRequest = 3,
  kAssign = 4,
  kNoWork = 5,
  kHeartbeat = 6,
  kHeartbeatAck = 7,
  kProgress = 8,
  kResult = 9,
  kError = 10,     ///< typed refusal, sent before the sender closes
  kShutdown = 11,  ///< broker is going away: campaign done, or draining
};

/// Why a peer is being refused. Carried in ERROR so the refused side can
/// decide between "give up with this diagnosis" (mismatch, quarantine) and
/// "the wire is bad, reconnect" (malformed frame on an established link).
enum class ErrorCode : std::uint32_t {
  kProtocolMismatch = 1,  ///< HELLO/WELCOME version disagreement
  kMalformedFrame = 2,    ///< undecodable or checksum-failed bytes
  kUnexpectedFrame = 3,   ///< well-formed but out of contract
  kQuarantined = 4,       ///< address refused for repeat offences
};

/// Why the broker is disconnecting everyone.
enum class ShutdownReason : std::uint32_t {
  kCampaignComplete = 1,  ///< every point has a result; exit cleanly
  kDraining = 2,          ///< broker restarting; re-dial with backoff
};

struct Frame {
  FrameType type{};
  std::string payload;

  bool operator==(const Frame&) const = default;
};

/// Renders `frame` in wire format (length prefix + type + payload).
/// Throws ProtocolError if the payload exceeds kMaxFrameBytes.
std::string encode_frame(const Frame& frame);

/// Incremental frame parser tolerant of arbitrary byte chunking — TCP
/// gives no message boundaries, so bytes are fed as they arrive and whole
/// frames pop out as they complete. Oversized or undersized declared
/// frames throw ProtocolError immediately (before buffering the body);
/// a frame whose trailing checksum does not match its bytes throws once
/// the body is complete.
class FrameDecoder {
 public:
  /// Appends raw bytes from the stream.
  void feed(const void* data, std::size_t size);

  /// Pops the next complete frame, or nullopt if more bytes are needed.
  std::optional<Frame> next();

  /// Bytes currently buffered (tests).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

// ----- typed payloads ----------------------------------------------------

struct HelloFrame {
  std::uint32_t protocol = kProtocolVersion;
  std::string worker;  ///< display name, e.g. "host:pid"
};

struct WelcomeFrame {
  std::uint32_t protocol = kProtocolVersion;
  std::string campaign;  ///< workload label, for logs
  std::uint64_t heartbeat_ms = 2000;
  std::uint64_t lease_ms = 10000;
  /// Execution options every worker must share with the broker's
  /// in-process equivalent, or tables diverge:
  std::uint64_t max_cycles = ~std::uint64_t{0};
  std::uint32_t max_attempts = 2;
};

struct AssignFrame {
  std::uint64_t index = 0;
  simfw::ConfigMap config;  ///< the raw (pre-normalisation) point map
};

/// HEARTBEAT / HEARTBEAT_ACK payload.
struct IndexFrame {
  std::uint64_t index = 0;
};

struct ProgressFrame {
  std::uint64_t index = 0;
  std::string phase;        ///< e.g. "running"
  std::uint64_t value = 0;  ///< phase-specific (elapsed host ms)
};

struct ResultFrame {
  std::uint64_t index = 0;
  sweep::PointResult point;  ///< full outcome; index field mirrors `index`
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kMalformedFrame;
  std::string message;
};

struct ShutdownFrame {
  ShutdownReason reason = ShutdownReason::kCampaignComplete;
  std::string message;
};

Frame encode_hello(const HelloFrame& hello);
Frame encode_welcome(const WelcomeFrame& welcome);
Frame encode_request();
Frame encode_assign(const AssignFrame& assign);
Frame encode_no_work();
Frame encode_heartbeat(const IndexFrame& heartbeat);
Frame encode_heartbeat_ack(const IndexFrame& ack);
Frame encode_progress(const ProgressFrame& progress);
Frame encode_result(const ResultFrame& result);
Frame encode_error(const ErrorFrame& error);
Frame encode_shutdown(const ShutdownFrame& shutdown);

/// Each parser throws ProtocolError when `frame` has the wrong type or a
/// malformed payload.
HelloFrame parse_hello(const Frame& frame);
WelcomeFrame parse_welcome(const Frame& frame);
AssignFrame parse_assign(const Frame& frame);
IndexFrame parse_heartbeat(const Frame& frame);
IndexFrame parse_heartbeat_ack(const Frame& frame);
ProgressFrame parse_progress(const Frame& frame);
ResultFrame parse_result(const Frame& frame);
ErrorFrame parse_error(const Frame& frame);
ShutdownFrame parse_shutdown(const Frame& frame);

}  // namespace coyote::campaign
