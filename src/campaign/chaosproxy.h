// A deterministic TCP chaos proxy for torturing the campaign wire
// protocol in-process. It sits between workers and the broker, shuttling
// bytes both ways, and — driven by a seeded xoshiro256** stream — injects
// the failures real networks produce:
//
//   * delays        : hold a chunk for a few milliseconds
//   * resets        : SO_LINGER-0 close (a genuine RST) of both sides
//   * partitions    : half-open link — one direction silently eats bytes
//                     while the other keeps flowing (the classic
//                     "switch died holding the connection up" failure)
//   * truncation    : forward a prefix of a chunk, cut at an arbitrary
//                     byte offset (mid-length-prefix, mid-payload), reset
//   * duplication   : forward the same chunk twice
//   * bit flips     : corrupt one random bit in transit
//
// Every decision is drawn from the single seeded stream in a fixed order,
// so a scenario is replayed by its seed. Rates are parts-per-thousand per
// forwarded chunk; all default to 0 (a faithful proxy).
//
// Single-threaded poll loop, same shape as the broker's: run() serves
// until stop(). Tests run it on a thread next to the broker and point
// workers at proxy.port().
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "campaign/net.h"
#include "common/rng.h"

namespace coyote::campaign {

class ChaosProxy {
 public:
  struct Options {
    std::string upstream_host = "127.0.0.1";
    std::uint16_t upstream_port = 0;
    std::uint64_t seed = 1;
    /// Per-chunk fault rates, parts-per-thousand.
    unsigned delay_pmil = 0;
    unsigned delay_max_ms = 20;  ///< delays are uniform in [1, delay_max_ms]
    unsigned reset_pmil = 0;
    unsigned partition_pmil = 0;
    unsigned truncate_pmil = 0;
    unsigned duplicate_pmil = 0;
    unsigned bitflip_pmil = 0;
  };

  /// What the proxy actually did — tests assert chaos really happened.
  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t chunks = 0;
    std::uint64_t bytes = 0;
    std::uint64_t delays = 0;
    std::uint64_t resets = 0;
    std::uint64_t partitions = 0;
    std::uint64_t truncations = 0;
    std::uint64_t duplications = 0;
    std::uint64_t bitflips = 0;
  };

  explicit ChaosProxy(Options options);

  /// Binds the client-facing socket (port 0 = kernel-assigned).
  std::uint16_t listen(const std::string& host, std::uint16_t port);
  std::uint16_t port() const { return listener_.local_port(); }

  /// Serves until stop(); run it on its own thread.
  void run();
  void stop() { stop_.store(true); }

  /// Snapshot of fault counters. Safe to call after run() returns; while
  /// it runs, counters are only written by the proxy thread.
  Stats stats() const { return stats_; }

 private:
  /// One proxied worker<->broker connection pair.
  struct Link {
    Socket client;
    Socket upstream;
    bool client_to_upstream_cut = false;  ///< half-open: direction eats bytes
    bool upstream_to_client_cut = false;
  };

  void tick(int timeout_ms);
  /// Forwards one chunk from `src` to `dst`, applying chaos. Returns false
  /// when the link must be torn down.
  bool shuttle(Socket& src, Socket& dst, bool& cut, bool* reset_out);
  void reset_link(Link& link);

  Options options_;
  Socket listener_;
  std::map<std::uint64_t, Link> links_;
  std::uint64_t next_link_id_ = 1;
  std::atomic<bool> stop_{false};
  Stats stats_;
  Xoshiro256 rng_;
};

}  // namespace coyote::campaign
