// Thin RAII layer over POSIX TCP sockets — just enough for the campaign
// service's broker/worker links: listen/accept/connect on loopback or real
// interfaces, non-blocking reads feeding the frame decoder, and a write
// helper that finishes whole frames even on a non-blocking descriptor.
// Errors throw SimError with the failing call and errno text; the campaign
// layer decides which errors are fatal for a connection vs the campaign.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace coyote::campaign {

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Binds and listens on host:port (port 0 = kernel-assigned; read it
  /// back with local_port). The listener is non-blocking.
  static Socket listen_tcp(const std::string& host, std::uint16_t port);

  /// Blocking connect to host:port. The returned socket is blocking;
  /// callers flip it as needed.
  static Socket connect_tcp(const std::string& host, std::uint16_t port);

  /// Accepts one pending connection (non-blocking listener); the returned
  /// socket is invalid when none is pending.
  Socket accept_conn();

  std::uint16_t local_port() const;

  /// The peer's numeric IPv4 address ("?" when unknown) — the quarantine
  /// ledger's key.
  std::string peer_address() const;

  void set_nonblocking(bool nonblocking);

  /// Arms TCP keepalive: probe after `idle_s` seconds of silence, every
  /// `interval_s` after that, declare the peer dead after `count` unanswered
  /// probes. A peer whose host vanished without a FIN (power loss, cable
  /// pull, half-open partition) surfaces as a read error instead of a
  /// connection that hangs forever. Best effort — failures are ignored.
  void set_keepalive(int idle_s = 30, int interval_s = 10, int count = 3);

  /// Reads what is available: >0 bytes read, 0 = would-block (no data on a
  /// non-blocking socket), -1 = connection closed or failed.
  long read_some(void* buffer, std::size_t size);

  /// Writes all `size` bytes, polling for writability on a non-blocking
  /// socket. Returns false when the peer is gone (EPIPE/reset).
  bool write_all(const void* buffer, std::size_t size);

 private:
  int fd_ = -1;
};

/// poll(2) on a single fd for readability; returns true when readable
/// within `timeout_ms` (-1 = wait forever).
bool wait_readable(int fd, int timeout_ms);

}  // namespace coyote::campaign
