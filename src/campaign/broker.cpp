#include "campaign/broker.h"

#include <poll.h>

#include <algorithm>
#include <filesystem>

#include "common/error.h"
#include "common/log.h"
#include "core/config_io.h"
#include "sweep/point_runner.h"

namespace coyote::campaign {

namespace {

bool send_frame(Socket& sock, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  return sock.write_all(wire.data(), wire.size());
}

}  // namespace

Broker::Broker(const sweep::SweepSpec& spec, Options options)
    : options_(std::move(options)),
      spec_(spec.with_workload_keys()),
      points_(spec_.expand()),
      lease_(points_.size(), options_.lease),
      sink_(options_.progress, points_.size(), options_.progress_out) {
  if (!options_.clock) options_.clock = steady_clock();
  report_.workload = spec.kernel;
  report_.points.resize(points_.size());
  normalized_.resize(points_.size());
  memo_key_.resize(points_.size(), 0);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    report_.points[i].index = i;
    report_.points[i].config = points_[i];
    try {
      simfw::ConfigMap norm =
          core::config_to_map(core::config_from_map(points_[i]));
      memo_key_[i] = core::config_map_hash(norm);
      normalized_[i] = std::move(norm);
    } catch (const std::exception&) {
      // Unparseable point: it still goes to a worker, fails there with the
      // same error the in-process engine records, and lands in the table.
      // Only persistence and memoisation need the normalised map.
    }
  }
  if (!options_.state_dir.empty()) {
    std::filesystem::create_directories(options_.state_dir);
  }
  if (!options_.memo_dir.empty()) {
    memo_ = std::make_unique<MemoStore>(options_.memo_dir);
  }
  prefill_from_records();
}

std::string Broker::done_path(std::size_t index) const {
  return options_.state_dir + "/point" + std::to_string(index) + ".done";
}

void Broker::prefill_from_records() {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (!normalized_[i]) continue;
    sweep::PointResult point;
    point.index = i;
    point.config = points_[i];
    std::string source;
    if (!options_.state_dir.empty() &&
        sweep::try_load_done_record(done_path(i), *normalized_[i], point)) {
      source = "resume";
    } else if (memo_ && memo_->try_load(memo_key_[i], *normalized_[i], point)) {
      source = "memo";
      point.index = i;
      // Promote the memo hit to campaign state so a broker restart resumes
      // it locally without consulting the store again.
      if (!options_.state_dir.empty()) {
        try {
          sweep::write_done_record(done_path(i), point);
        } catch (const std::exception& e) {
          COYOTE_WARN("campaign: cannot persist memo hit for point %zu: %s",
                      i, e.what());
        }
      }
    } else {
      continue;
    }
    lease_.complete(i);
    report_.points[i] = std::move(point);
    sink_.point_done(report_.points[i], source);
  }
}

std::uint16_t Broker::listen(const std::string& host, std::uint16_t port) {
  listener_ = Socket::listen_tcp(host, port);
  return listener_.local_port();
}

int Broker::poll_timeout_ms() const {
  int timeout = 200;
  if (const auto deadline = lease_.next_deadline()) {
    const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
                           *deadline - options_.clock())
                           .count();
    timeout = static_cast<int>(std::clamp<long long>(delta, 0, 200));
  }
  return timeout;
}

sweep::SweepReport Broker::serve() {
  if (!listener_.valid()) {
    throw SimError("campaign: serve() called before listen()");
  }
  while (!stop_.load(std::memory_order_relaxed) && !lease_.all_done()) {
    tick(poll_timeout_ms());
  }
  // Linger briefly so a worker that connects just as the campaign resolves
  // (memo-warm runs can finish before any worker joins) hears a clean
  // NO_WORK instead of a connection reset — and so connected workers get
  // their goodbye before the listener closes.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
  while (!stop_.load(std::memory_order_relaxed) &&
         std::chrono::steady_clock::now() < until) {
    if (any_helloed_ && conns_.empty()) break;
    tick(50);
  }
  const Frame no_work = encode_no_work();
  for (auto& [id, conn] : conns_) {
    if (conn.helloed) send_frame(conn.sock, no_work);
  }
  conns_.clear();
  wait_queue_.clear();
  return report_;
}

void Broker::tick(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> ids;
  fds.reserve(conns_.size() + 1);
  ids.reserve(conns_.size());
  fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
  for (auto& [id, conn] : conns_) {
    fds.push_back(pollfd{conn.sock.fd(), POLLIN, 0});
    ids.push_back(id);
  }
  ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  const TimePoint now = options_.clock();

  if ((fds[0].revents & POLLIN) != 0) {
    while (true) {
      Socket sock = listener_.accept_conn();
      if (!sock.valid()) break;
      sock.set_nonblocking(true);
      const std::uint64_t id = next_conn_id_++;
      Conn conn;
      conn.sock = std::move(sock);
      conn.id = id;
      conns_.emplace(id, std::move(conn));
    }
  }

  for (std::size_t k = 0; k < ids.size(); ++k) {
    if ((fds[k + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    const std::uint64_t id = ids[k];
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    bool drop = false;
    bool eof = false;
    std::string why;
    try {
      char buf[4096];
      while (true) {
        const long n = conn.sock.read_some(buf, sizeof buf);
        if (n == 0) break;  // drained
        if (n < 0) {
          eof = true;
          break;
        }
        conn.decoder.feed(buf, static_cast<std::size_t>(n));
      }
      // Frames already buffered are handled even when the peer has since
      // closed — a worker may deliver its last RESULT and exit.
      while (!drop) {
        const auto frame = conn.decoder.next();
        if (!frame) break;
        if (!handle_frame(conn, *frame, now)) {
          drop = true;
          why = "send failed";
        }
      }
    } catch (const std::exception& e) {
      drop = true;
      why = e.what();
    }
    if (eof && !drop) {
      drop = true;
      if (conn.point) why = "disconnected mid-point";
    }
    if (drop) drop_conn(id, why);
  }

  for (const std::size_t point : lease_.expire(now)) {
    sink_.note(strfmt("lease on point %zu expired; requeueing", point));
    for (auto& [id, conn] : conns_) {
      if (conn.point && *conn.point == point) conn.point.reset();
    }
  }
  dispatch_waiting(now);
}

bool Broker::handle_frame(Conn& conn, const Frame& frame, TimePoint now) {
  if (!conn.helloed) {
    const HelloFrame hello = parse_hello(frame);
    if (hello.protocol != kProtocolVersion) {
      throw ProtocolError(strfmt(
          "worker '%s' speaks protocol %u, this broker speaks %u",
          hello.worker.c_str(), hello.protocol, kProtocolVersion));
    }
    conn.name = hello.worker.empty() ? "conn#" + std::to_string(conn.id)
                                     : hello.worker;
    conn.helloed = true;
    any_helloed_ = true;
    WelcomeFrame welcome;
    welcome.campaign = spec_.kernel;
    welcome.heartbeat_ms =
        static_cast<std::uint64_t>(options_.heartbeat.count());
    welcome.lease_ms = static_cast<std::uint64_t>(options_.lease.count());
    welcome.max_cycles = static_cast<std::uint64_t>(options_.max_cycles);
    welcome.max_attempts = options_.max_attempts;
    return send_frame(conn.sock, encode_welcome(welcome));
  }
  switch (frame.type) {
    case FrameType::kRequest: {
      if (lease_.all_done()) return send_frame(conn.sock, encode_no_work());
      return assign_point(conn, now);
    }
    case FrameType::kHeartbeat: {
      const IndexFrame heartbeat = parse_heartbeat(frame);
      // Renewal is owner-checked; a heartbeat for a point this worker no
      // longer holds is acked anyway (the worker finishes and its late
      // result is dropped as a duplicate).
      lease_.renew(static_cast<std::size_t>(heartbeat.index), conn.id, now);
      return send_frame(conn.sock,
                        encode_heartbeat_ack({heartbeat.index}));
    }
    case FrameType::kProgress: {
      const ProgressFrame progress = parse_progress(frame);
      sink_.point_progress(static_cast<std::size_t>(progress.index),
                           progress.phase, progress.value, conn.name);
      return true;
    }
    case FrameType::kResult: {
      ResultFrame result = parse_result(frame);
      const auto index = static_cast<std::size_t>(result.index);
      if (index >= points_.size()) {
        throw ProtocolError(strfmt(
            "worker '%s' sent a result for point %zu of %zu",
            conn.name.c_str(), index, points_.size()));
      }
      if (conn.point && *conn.point == index) conn.point.reset();
      if (lease_.complete(index)) {
        finalize_result(index, std::move(result.point), conn.name);
      } else {
        sink_.note(strfmt("dropping duplicate result for point %zu from '%s'",
                          index, conn.name.c_str()));
      }
      return true;
    }
    default:
      throw ProtocolError(strfmt("unexpected frame type %u from worker '%s'",
                                 static_cast<unsigned>(frame.type),
                                 conn.name.c_str()));
  }
}

bool Broker::assign_point(Conn& conn, TimePoint now) {
  const auto point = lease_.acquire(conn.id, now);
  if (!point) {
    // All remaining points are leased out; park the request until a lease
    // expires or a worker drops.
    if (!conn.waiting) {
      conn.waiting = true;
      wait_queue_.push_back(conn.id);
    }
    return true;
  }
  conn.point = *point;
  AssignFrame assign;
  assign.index = static_cast<std::uint64_t>(*point);
  assign.config = points_[*point];
  return send_frame(conn.sock, encode_assign(assign));
}

void Broker::dispatch_waiting(TimePoint now) {
  while (!wait_queue_.empty()) {
    if (!lease_.all_done() && lease_.num_pending() == 0) return;
    const std::uint64_t id = wait_queue_.front();
    wait_queue_.erase(wait_queue_.begin());
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    conn.waiting = false;
    const bool sent = lease_.all_done()
                          ? send_frame(conn.sock, encode_no_work())
                          : assign_point(conn, now);
    if (!sent) drop_conn(id, "send failed");
  }
}

void Broker::finalize_result(std::size_t index, sweep::PointResult point,
                             const std::string& source) {
  point.index = index;
  if (point.ok && normalized_[index] &&
      point.config.values() != normalized_[index]->values()) {
    COYOTE_WARN(
        "campaign: worker '%s' normalised point %zu differently than this "
        "broker — mismatched builds? table may not match --jobs=1",
        source.c_str(), index);
  }
  if (point.ok && normalized_[index]) {
    if (!options_.state_dir.empty()) {
      try {
        sweep::write_done_record(done_path(index), point);
      } catch (const std::exception& e) {
        COYOTE_WARN("campaign: cannot persist point %zu record: %s", index,
                    e.what());
      }
    }
    if (memo_) {
      try {
        memo_->store(memo_key_[index], point);
      } catch (const std::exception& e) {
        COYOTE_WARN("campaign: cannot memoise point %zu: %s", index, e.what());
      }
    }
  }
  report_.points[index] = std::move(point);
  sink_.point_done(report_.points[index], source);
}

void Broker::drop_conn(std::uint64_t id, const std::string& why) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const std::string name = it->second.name.empty()
                               ? "conn#" + std::to_string(id)
                               : it->second.name;
  wait_queue_.erase(std::remove(wait_queue_.begin(), wait_queue_.end(), id),
                    wait_queue_.end());
  conns_.erase(it);
  if (const auto point = lease_.release_worker(id)) {
    sink_.note(strfmt("worker '%s' lost (%s); point %zu requeued",
                      name.c_str(), why.empty() ? "gone" : why.c_str(),
                      *point));
  } else if (!why.empty()) {
    sink_.note(strfmt("worker '%s' dropped: %s", name.c_str(), why.c_str()));
  }
}

}  // namespace coyote::campaign
