#include "campaign/broker.h"

#include <poll.h>

#include <algorithm>
#include <filesystem>

#include "common/error.h"
#include "common/log.h"
#include "core/config_io.h"
#include "sweep/point_runner.h"

namespace coyote::campaign {

namespace {

bool send_frame(Socket& sock, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  return sock.write_all(wire.data(), wire.size());
}

}  // namespace

Broker::Broker(const sweep::SweepSpec& spec, Options options)
    : options_(std::move(options)),
      spec_(spec.with_workload_keys()),
      points_(spec_.expand()),
      lease_(points_.size(), options_.lease),
      sink_(options_.progress, points_.size(), options_.progress_out) {
  if (!options_.clock) options_.clock = steady_clock();
  report_.workload = spec.kernel;
  report_.points.resize(points_.size());
  normalized_.resize(points_.size());
  memo_key_.resize(points_.size(), 0);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    report_.points[i].index = i;
    report_.points[i].config = points_[i];
    try {
      simfw::ConfigMap norm =
          core::config_to_map(core::config_from_map(points_[i]));
      memo_key_[i] = core::config_map_hash(norm);
      normalized_[i] = std::move(norm);
    } catch (const std::exception&) {
      // Unparseable point: it still goes to a worker, fails there with the
      // same error the in-process engine records, and lands in the table.
      // Only persistence and memoisation need the normalised map.
    }
  }
  if (!options_.state_dir.empty()) {
    std::filesystem::create_directories(options_.state_dir);
  }
  if (!options_.memo_dir.empty()) {
    memo_ = std::make_unique<MemoStore>(options_.memo_dir);
  }
  prefill_from_records();
}

std::string Broker::done_path(std::size_t index) const {
  return options_.state_dir + "/point" + std::to_string(index) + ".done";
}

void Broker::prefill_from_records() {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (!normalized_[i]) continue;
    sweep::PointResult point;
    point.index = i;
    point.config = points_[i];
    std::string source;
    if (!options_.state_dir.empty() &&
        sweep::try_load_done_record(done_path(i), *normalized_[i], point)) {
      source = "resume";
    } else if (memo_ && memo_->try_load(memo_key_[i], *normalized_[i], point)) {
      source = "memo";
      point.index = i;
      // Promote the memo hit to campaign state so a broker restart resumes
      // it locally without consulting the store again.
      if (!options_.state_dir.empty()) {
        try {
          sweep::write_done_record(done_path(i), point);
        } catch (const std::exception& e) {
          COYOTE_WARN("campaign: cannot persist memo hit for point %zu: %s",
                      i, e.what());
        }
      }
    } else {
      continue;
    }
    lease_.complete(i);
    report_.points[i] = std::move(point);
    sink_.point_done(report_.points[i], source);
  }
}

std::uint16_t Broker::listen(const std::string& host, std::uint16_t port) {
  listener_ = Socket::listen_tcp(host, port);
  return listener_.local_port();
}

int Broker::poll_timeout_ms() const {
  int timeout = 200;
  if (const auto deadline = lease_.next_deadline()) {
    const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
                           *deadline - options_.clock())
                           .count();
    timeout = static_cast<int>(std::clamp<long long>(delta, 0, 200));
  }
  return timeout;
}

std::chrono::milliseconds Broker::idle_timeout() const {
  if (options_.idle_timeout.count() > 0) return options_.idle_timeout;
  return options_.lease * 3;
}

void Broker::broadcast_shutdown(ShutdownReason reason,
                                const std::string& message) {
  const Frame bye = encode_shutdown({reason, message});
  for (auto& [id, conn] : conns_) {
    if (conn.helloed) send_frame(conn.sock, bye);
  }
  conns_.clear();
  wait_queue_.clear();
}

sweep::SweepReport Broker::serve() {
  if (!listener_.valid()) {
    throw SimError("campaign: serve() called before listen()");
  }
  drain_deadline_.reset();
  while (!stop_.load(std::memory_order_relaxed) && !lease_.all_done()) {
    const TimePoint now = options_.clock();
    if (draining() && !drain_deadline_) {
      drain_deadline_ = now + options_.drain_grace;
      sink_.note(strfmt(
          "draining: no new assignments, waiting up to %lld ms for %zu "
          "in-flight point%s",
          static_cast<long long>(options_.drain_grace.count()),
          lease_.num_leased(), lease_.num_leased() == 1 ? "" : "s"));
      dispatch_waiting(now);  // parked requests hear NO_WORK immediately
    }
    if (drain_deadline_ &&
        (lease_.num_leased() == 0 || now >= *drain_deadline_)) {
      break;
    }
    tick(poll_timeout_ms());
  }
  drained_incomplete_ = !lease_.all_done();
  if (drained_incomplete_) {
    broadcast_shutdown(ShutdownReason::kDraining,
                       "broker draining; campaign incomplete");
    sink_.note(strfmt("drained with %zu/%zu points done%s",
                      lease_.num_done(), points_.size(),
                      options_.state_dir.empty()
                          ? " (no --state-dir: undone work is lost)"
                          : "; restart from --state-dir to resume"));
    return report_;
  }
  // Linger briefly so a worker that connects just as the campaign resolves
  // (memo-warm runs can finish before any worker joins) hears a clean
  // SHUTDOWN instead of a connection reset — and so connected workers get
  // their goodbye before the listener closes.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
  while (!stop_.load(std::memory_order_relaxed) &&
         std::chrono::steady_clock::now() < until) {
    if (any_helloed_ && conns_.empty()) break;
    tick(50);
  }
  broadcast_shutdown(ShutdownReason::kCampaignComplete, "campaign complete");
  return report_;
}

void Broker::tick(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> ids;
  fds.reserve(conns_.size() + 1);
  ids.reserve(conns_.size());
  fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
  for (auto& [id, conn] : conns_) {
    fds.push_back(pollfd{conn.sock.fd(), POLLIN, 0});
    ids.push_back(id);
  }
  ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  const TimePoint now = options_.clock();

  if ((fds[0].revents & POLLIN) != 0) {
    // Overload shedding: admit connections only up to the cap; the rest
    // wait in the kernel's listen backlog instead of growing broker state.
    while (conns_.size() < options_.max_conns) {
      Socket sock = listener_.accept_conn();
      if (!sock.valid()) break;
      const std::string addr = sock.peer_address();
      if (quarantined(addr, now)) {
        sock.set_nonblocking(true);
        send_frame(sock, encode_error(
                             {ErrorCode::kQuarantined,
                              strfmt("address %s quarantined for repeated "
                                     "protocol errors",
                                     addr.c_str())}));
        continue;  // close on scope exit
      }
      sock.set_nonblocking(true);
      const std::uint64_t id = next_conn_id_++;
      Conn conn;
      conn.sock = std::move(sock);
      conn.id = id;
      conn.addr = addr;
      conn.last_activity = now;
      conns_.emplace(id, std::move(conn));
    }
  }

  for (std::size_t k = 0; k < ids.size(); ++k) {
    if ((fds[k + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    const std::uint64_t id = ids[k];
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    bool drop = false;
    bool eof = false;
    std::string why;
    std::optional<ErrorCode> offence;
    try {
      char buf[4096];
      while (true) {
        const long n = conn.sock.read_some(buf, sizeof buf);
        if (n == 0) break;  // drained
        if (n < 0) {
          eof = true;
          break;
        }
        conn.last_activity = now;
        conn.decoder.feed(buf, static_cast<std::size_t>(n));
      }
      // Frames already buffered are handled even when the peer has since
      // closed — a worker may deliver its last RESULT and exit.
      while (!drop) {
        const auto frame = conn.decoder.next();
        if (!frame) break;
        if (!handle_frame(conn, *frame, now)) {
          drop = true;
          why = "send failed";
        }
      }
    } catch (const PeerMisbehaved& misbehaved) {
      drop = true;
      why = misbehaved.what;
      offence = misbehaved.code;
    } catch (const ProtocolError& e) {
      drop = true;
      why = e.what();
      offence = ErrorCode::kMalformedFrame;
    } catch (const std::exception& e) {
      drop = true;
      why = e.what();
    }
    if (eof && !drop) {
      drop = true;
      if (conn.point) why = "disconnected mid-point";
    }
    if (drop) {
      if (offence) {
        // Reply-then-close: the peer learns *why* it is being refused
        // (best effort — it may already be gone), and its address earns a
        // quarantine strike so a looping bad client is eventually refused
        // at accept instead of spinning the event loop.
        send_frame(conn.sock, encode_error({*offence, why}));
        strike(conn.addr, now);
      }
      drop_conn(id, why);
    }
  }

  // Dead-peer reaping: a half-open connection (peer's host died without a
  // FIN) never POLLHUPs, so silence is the only signal. Helloed workers
  // heartbeat every heartbeat_ms; several missed lease durations means the
  // peer is gone. Pre-HELLO connections get one lease duration to speak.
  std::vector<std::uint64_t> idle;
  for (auto& [id, conn] : conns_) {
    const auto limit = conn.helloed ? idle_timeout() : options_.lease;
    if (now - conn.last_activity > limit) idle.push_back(id);
  }
  for (const std::uint64_t id : idle) drop_conn(id, "idle; presumed dead");

  for (const std::size_t point : lease_.expire(now)) {
    sink_.note(strfmt("lease on point %zu expired; requeueing", point));
    for (auto& [id, conn] : conns_) {
      if (conn.point && *conn.point == point) conn.point.reset();
    }
  }
  dispatch_waiting(now);
}

void Broker::strike(const std::string& addr, TimePoint now) {
  if (options_.quarantine_strikes == 0 || addr == "?") return;
  Offender& offender = offenders_[addr];
  ++offender.strikes;
  offender.until = now + options_.quarantine_cooldown;
  if (offender.strikes == options_.quarantine_strikes) {
    sink_.note(strfmt(
        "quarantining %s for %lld ms after %u protocol errors",
        addr.c_str(),
        static_cast<long long>(options_.quarantine_cooldown.count()),
        offender.strikes));
  }
}

bool Broker::quarantined(const std::string& addr, TimePoint now) {
  if (options_.quarantine_strikes == 0) return false;
  const auto it = offenders_.find(addr);
  if (it == offenders_.end()) return false;
  if (now >= it->second.until) {
    offenders_.erase(it);  // cooldown served; clean slate
    return false;
  }
  return it->second.strikes >= options_.quarantine_strikes;
}

bool Broker::handle_frame(Conn& conn, const Frame& frame, TimePoint now) {
  if (!conn.helloed) {
    const HelloFrame hello = parse_hello(frame);
    if (hello.protocol != kProtocolVersion) {
      // Reply-then-close (via the PeerMisbehaved path) so a mismatched
      // worker prints *why* instead of retrying a dead handshake forever.
      throw PeerMisbehaved{
          ErrorCode::kProtocolMismatch,
          strfmt("worker '%s' speaks protocol %u, this broker speaks %u",
                 hello.worker.c_str(), hello.protocol, kProtocolVersion)};
    }
    conn.name = hello.worker.empty() ? "conn#" + std::to_string(conn.id)
                                     : hello.worker;
    conn.helloed = true;
    any_helloed_ = true;
    WelcomeFrame welcome;
    welcome.campaign = spec_.kernel;
    welcome.heartbeat_ms =
        static_cast<std::uint64_t>(options_.heartbeat.count());
    welcome.lease_ms = static_cast<std::uint64_t>(options_.lease.count());
    welcome.max_cycles = static_cast<std::uint64_t>(options_.max_cycles);
    welcome.max_attempts = options_.max_attempts;
    return send_frame(conn.sock, encode_welcome(welcome));
  }
  switch (frame.type) {
    case FrameType::kRequest: {
      if (lease_.all_done()) {
        return send_frame(
            conn.sock, encode_shutdown({ShutdownReason::kCampaignComplete,
                                        "campaign complete"}));
      }
      // Draining: NO_WORK means "stand by" — the worker parks and waits for
      // either more work (never, here) or the SHUTDOWN{kDraining} broadcast
      // that tells it to reconnect-with-backoff to the restarted broker.
      if (draining()) return send_frame(conn.sock, encode_no_work());
      return assign_point(conn, now);
    }
    case FrameType::kHeartbeat: {
      const IndexFrame heartbeat = parse_heartbeat(frame);
      // Renewal is owner-checked; a heartbeat for a point this worker no
      // longer holds is acked anyway (the worker finishes and its late
      // result is dropped as a duplicate).
      lease_.renew(static_cast<std::size_t>(heartbeat.index), conn.id, now);
      return send_frame(conn.sock,
                        encode_heartbeat_ack({heartbeat.index}));
    }
    case FrameType::kProgress: {
      const ProgressFrame progress = parse_progress(frame);
      sink_.point_progress(static_cast<std::size_t>(progress.index),
                           progress.phase, progress.value, conn.name);
      return true;
    }
    case FrameType::kResult: {
      ResultFrame result = parse_result(frame);
      const auto index = static_cast<std::size_t>(result.index);
      if (index >= points_.size()) {
        throw PeerMisbehaved{
            ErrorCode::kUnexpectedFrame,
            strfmt("worker '%s' sent a result for point %zu of %zu",
                   conn.name.c_str(), index, points_.size())};
      }
      if (conn.point && *conn.point == index) conn.point.reset();
      if (lease_.complete(index)) {
        finalize_result(index, std::move(result.point), conn.name);
      } else {
        sink_.note(strfmt("dropping duplicate result for point %zu from '%s'",
                          index, conn.name.c_str()));
      }
      return true;
    }
    default:
      throw PeerMisbehaved{
          ErrorCode::kUnexpectedFrame,
          strfmt("unexpected frame type %u from worker '%s'",
                 static_cast<unsigned>(frame.type), conn.name.c_str())};
  }
}

bool Broker::assign_point(Conn& conn, TimePoint now) {
  const auto point = lease_.acquire(conn.id, now);
  if (!point) {
    // All remaining points are leased out; park the request until a lease
    // expires or a worker drops.
    if (!conn.waiting) {
      conn.waiting = true;
      wait_queue_.push_back(conn.id);
    }
    return true;
  }
  conn.point = *point;
  AssignFrame assign;
  assign.index = static_cast<std::uint64_t>(*point);
  assign.config = points_[*point];
  return send_frame(conn.sock, encode_assign(assign));
}

void Broker::dispatch_waiting(TimePoint now) {
  while (!wait_queue_.empty()) {
    const bool done = lease_.all_done();
    // Nothing to hand out and nothing to announce: leave requests parked
    // until a lease expires or a worker drops.
    if (!done && !draining() && lease_.num_pending() == 0) return;
    const std::uint64_t id = wait_queue_.front();
    wait_queue_.erase(wait_queue_.begin());
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    conn.waiting = false;
    bool sent = false;
    if (done) {
      sent = send_frame(conn.sock,
                        encode_shutdown({ShutdownReason::kCampaignComplete,
                                         "campaign complete"}));
    } else if (draining()) {
      sent = send_frame(conn.sock, encode_no_work());
    } else {
      sent = assign_point(conn, now);
    }
    if (!sent) drop_conn(id, "send failed");
  }
}

void Broker::finalize_result(std::size_t index, sweep::PointResult point,
                             const std::string& source) {
  point.index = index;
  if (point.ok && normalized_[index] &&
      point.config.values() != normalized_[index]->values()) {
    COYOTE_WARN(
        "campaign: worker '%s' normalised point %zu differently than this "
        "broker — mismatched builds? table may not match --jobs=1",
        source.c_str(), index);
  }
  if (point.ok && normalized_[index]) {
    if (!options_.state_dir.empty()) {
      try {
        sweep::write_done_record(done_path(index), point);
      } catch (const std::exception& e) {
        COYOTE_WARN("campaign: cannot persist point %zu record: %s", index,
                    e.what());
      }
    }
    if (memo_) {
      try {
        memo_->store(memo_key_[index], point);
      } catch (const std::exception& e) {
        COYOTE_WARN("campaign: cannot memoise point %zu: %s", index, e.what());
      }
    }
  }
  report_.points[index] = std::move(point);
  sink_.point_done(report_.points[index], source);
}

void Broker::drop_conn(std::uint64_t id, const std::string& why) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const std::string name = it->second.name.empty()
                               ? "conn#" + std::to_string(id)
                               : it->second.name;
  wait_queue_.erase(std::remove(wait_queue_.begin(), wait_queue_.end(), id),
                    wait_queue_.end());
  conns_.erase(it);
  if (const auto point = lease_.release_worker(id)) {
    sink_.note(strfmt("worker '%s' lost (%s); point %zu requeued",
                      name.c_str(), why.empty() ? "gone" : why.c_str(),
                      *point));
  } else if (!why.empty()) {
    sink_.note(strfmt("worker '%s' dropped: %s", name.c_str(), why.c_str()));
  }
}

}  // namespace coyote::campaign
