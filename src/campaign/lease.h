// The broker's point-ownership ledger. Every campaign point is in exactly
// one of three states — pending, leased (to one worker, with a deadline),
// or done — and every transition is driven either by a worker frame
// (acquire on ASSIGN, renew on HEARTBEAT, complete on RESULT, release on
// disconnect) or by the clock (expire). Reassignment is deterministic:
// pending points are handed out lowest index first, and an expired lease
// simply returns its point to the pending pool.
//
// Time is injected (a Clock callable) so lease-expiry behaviour is unit
// tested with a fake clock instead of sleeps.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace coyote::campaign {

using TimePoint = std::chrono::steady_clock::time_point;

/// Injected time source; defaults to std::chrono::steady_clock::now.
using Clock = std::function<TimePoint()>;

Clock steady_clock();

class LeaseTable {
 public:
  LeaseTable(std::size_t num_points, std::chrono::milliseconds lease_duration);

  /// Leases the lowest-index pending point to `worker`; nullopt when
  /// nothing is pending (all leased or done).
  std::optional<std::size_t> acquire(std::uint64_t worker, TimePoint now);

  /// Extends the lease on `point` by the lease duration. False (no-op)
  /// unless `worker` currently holds it — a heartbeat racing its own
  /// expiry must not resurrect a reassigned point's old lease.
  bool renew(std::size_t point, std::uint64_t worker, TimePoint now);

  /// Marks `point` done from any state. Returns false if it already was
  /// (a forfeited worker's late duplicate result) — the caller drops the
  /// duplicate. An active lease on the point, whoever holds it, is
  /// cleared: results are deterministic, so the first arrival wins and
  /// is identical to whatever the other worker would have sent.
  bool complete(std::size_t point);

  /// Returns `worker`'s leased point (if any) to the pending pool —
  /// disconnect handling.
  std::optional<std::size_t> release_worker(std::uint64_t worker);

  /// Moves every lease whose deadline has passed back to pending;
  /// returns the expired points in ascending order.
  std::vector<std::size_t> expire(TimePoint now);

  /// The earliest lease deadline, for sizing the broker's poll timeout.
  std::optional<TimePoint> next_deadline() const;

  std::size_t num_pending() const { return pending_.size(); }
  std::size_t num_leased() const { return leased_.size(); }
  /// Safe to read from other threads (progress monitors, drain logic);
  /// everything else on this class belongs to the broker thread alone.
  std::size_t num_done() const {
    return num_done_.load(std::memory_order_relaxed);
  }
  bool all_done() const { return num_done() == num_points_; }

 private:
  struct Lease {
    std::uint64_t worker = 0;
    TimePoint deadline{};
  };

  std::size_t num_points_;
  std::chrono::milliseconds lease_duration_;
  std::set<std::size_t> pending_;        // ordered: lowest index first
  std::map<std::size_t, Lease> leased_;  // point -> holder
  std::atomic<std::size_t> num_done_{0};
};

}  // namespace coyote::campaign
