#include "campaign/memo.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/binio.h"
#include "common/error.h"
#include "common/log.h"
#include "core/config_io.h"
#include "sweep/point_record.h"
#include "sweep/point_runner.h"

namespace coyote::campaign {

namespace {
constexpr std::uint32_t kMemoMagic = 0x43594B4D;  // "MKYC" little-endian
}  // namespace

MemoStore::MemoStore(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::string MemoStore::entry_path(std::uint64_t key) const {
  return dir_ + "/" + core::config_hash_hex(key) + ".memo";
}

bool MemoStore::try_load(std::uint64_t key, const simfw::ConfigMap& expect,
                         sweep::PointResult& point) const {
  const std::string path = entry_path(key);
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  sweep::PointResult loaded;
  try {
    BinReader r(is);
    if (r.u32() != kMemoMagic) {
      COYOTE_WARN("memo: %s is not a memo entry; ignoring", path.c_str());
      return false;
    }
    if (r.u32() != sweep::kPointRecordVersion) return false;  // old format
    if (const std::uint64_t stored_key = r.u64(); stored_key != key) {
      COYOTE_WARN("memo: %s holds key %s; ignoring", path.c_str(),
                  core::config_hash_hex(stored_key).c_str());
      return false;
    }
    sweep::read_point_record(r, loaded);
  } catch (const std::exception& e) {
    COYOTE_WARN("memo: corrupt entry %s (%s); treating as a miss",
                path.c_str(), e.what());
    return false;
  }
  if (loaded.config.values() != expect.values()) {
    // A genuine 64-bit hash collision between two distinct design points.
    COYOTE_WARN(
        "memo: key collision on %s — stored config differs from the "
        "requested one; treating as a miss (debug with coyote_sweep "
        "--dry-run)",
        path.c_str());
    return false;
  }
  const std::size_t index = point.index;
  point = std::move(loaded);
  point.index = index;
  return true;
}

void MemoStore::store(std::uint64_t key,
                      const sweep::PointResult& point) const {
  const std::string path = entry_path(key);
  // Pid-suffixed temp name: two brokers sharing one store may race on the
  // same key, and their records are identical anyway.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw SimError("memo: cannot write " + tmp);
    BinWriter w(os);
    w.u32(kMemoMagic);
    w.u32(sweep::kPointRecordVersion);
    w.u64(key);
    sweep::write_point_record(w, point);
    os.flush();
    if (!os) throw SimError("memo: write failed for " + tmp);
  }
  // fsync-then-rename-then-dir-fsync: a memo entry either exists complete
  // and durable or not at all, even across a power cut.
  sweep::rename_durable(tmp, path);
}

}  // namespace coyote::campaign
