#include "campaign/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace coyote::campaign {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw SimError(strfmt("net: %s failed: %s", what, std::strerror(errno)));
}

sockaddr_in resolve(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    return addr;
  }
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  // Fall back to name resolution (IPv4 only — the protocol is address
  // family agnostic, the CLI surface keeps to v4 for now).
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  if (getaddrinfo(host.c_str(), nullptr, &hints, &results) != 0 ||
      results == nullptr) {
    throw SimError(strfmt("net: cannot resolve host '%s'", host.c_str()));
  }
  addr.sin_addr =
      reinterpret_cast<sockaddr_in*>(results->ai_addr)->sin_addr;
  freeaddrinfo(results);
  return addr;
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::listen_tcp(const std::string& host, std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = resolve(host, port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw_errno("bind");
  }
  if (::listen(sock.fd(), 64) != 0) throw_errno("listen");
  sock.set_nonblocking(true);
  return sock;
}

Socket Socket::connect_tcp(const std::string& host, std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket");
  const sockaddr_in addr = resolve(host, port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sock.set_keepalive();
  return sock;
}

Socket Socket::accept_conn() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return Socket();
    }
    throw_errno("accept");
  }
  Socket conn(fd);
  const int one = 1;
  ::setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  conn.set_keepalive();
  return conn;
}

std::string Socket::peer_address() const {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getpeername(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "?";
  }
  char text[INET_ADDRSTRLEN] = {};
  if (inet_ntop(AF_INET, &addr.sin_addr, text, sizeof text) == nullptr) {
    return "?";
  }
  return text;
}

void Socket::set_keepalive(int idle_s, int interval_s, int count) {
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof one);
#ifdef TCP_KEEPIDLE
  ::setsockopt(fd_, IPPROTO_TCP, TCP_KEEPIDLE, &idle_s, sizeof idle_s);
#endif
#ifdef TCP_KEEPINTVL
  ::setsockopt(fd_, IPPROTO_TCP, TCP_KEEPINTVL, &interval_s,
               sizeof interval_s);
#endif
#ifdef TCP_KEEPCNT
  ::setsockopt(fd_, IPPROTO_TCP, TCP_KEEPCNT, &count, sizeof count);
#endif
}

std::uint16_t Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

void Socket::set_nonblocking(bool nonblocking) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, want) < 0) throw_errno("fcntl(F_SETFL)");
}

long Socket::read_some(void* buffer, std::size_t size) {
  while (true) {
    const ssize_t n = ::recv(fd_, buffer, size, 0);
    if (n > 0) return static_cast<long>(n);
    if (n == 0) return -1;  // orderly shutdown
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;  // reset, broken pipe, ...
  }
}

bool Socket::write_all(const void* buffer, std::size_t size) {
  const char* data = static_cast<const char*>(buffer);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      ::poll(&pfd, 1, 1000);
      continue;
    }
    return false;  // peer gone
  }
  return true;
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  return ready > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

}  // namespace coyote::campaign
