#include "campaign/worker.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <optional>
#include <thread>
#include <vector>

#include "campaign/net.h"
#include "campaign/protocol.h"
#include "common/error.h"

namespace coyote::campaign {

namespace {

bool send_frame(Socket& sock, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  return sock.write_all(wire.data(), wire.size());
}

/// Blocking read of the next frame; nullopt on EOF or reset — the broker
/// is gone, which a worker treats as "campaign over", not an error.
std::optional<Frame> read_frame(Socket& sock, FrameDecoder& decoder) {
  while (true) {
    if (auto frame = decoder.next()) return frame;
    char buf[4096];
    const long n = sock.read_some(buf, sizeof buf);
    if (n < 0) return std::nullopt;
    if (n == 0) {
      wait_readable(sock.fd(), -1);
      continue;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace

Worker::Worker(Options options) : options_(std::move(options)) {
  if (options_.name.empty()) {
    options_.name = "pid" + std::to_string(::getpid());
  }
  if (options_.jobs == 0) options_.jobs = 1;
}

sweep::PointExecutor& Worker::executor(std::uint64_t max_cycles,
                                       std::uint32_t max_attempts) {
  const std::lock_guard<std::mutex> lock(executor_mutex_);
  if (!executor_) {
    sweep::PointExecutor::Options exec;
    exec.max_cycles = static_cast<Cycle>(max_cycles);
    exec.max_attempts = max_attempts;
    // No resume_dir: persistence is the broker's job; workers stay
    // stateless so killing one loses nothing.
    executor_ = std::make_unique<sweep::PointExecutor>(std::move(exec));
  }
  return *executor_;
}

std::size_t Worker::run() {
  if (options_.jobs == 1) return run_connection(0);
  std::vector<std::thread> threads;
  std::atomic<std::size_t> executed{0};
  std::vector<std::string> errors(options_.jobs);
  threads.reserve(options_.jobs);
  for (unsigned slot = 0; slot < options_.jobs; ++slot) {
    threads.emplace_back([this, slot, &executed, &errors] {
      try {
        executed += run_connection(slot);
      } catch (const std::exception& e) {
        errors[slot] = e.what();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& error : errors) {
    if (!error.empty()) throw SimError("campaign worker: " + error);
  }
  return executed.load();
}

std::size_t Worker::run_connection(unsigned slot) {
  Socket sock = Socket::connect_tcp(options_.host, options_.port);
  FrameDecoder decoder;

  HelloFrame hello;
  hello.worker = options_.jobs > 1
                     ? options_.name + "#" + std::to_string(slot)
                     : options_.name;
  if (!send_frame(sock, encode_hello(hello))) return 0;
  const auto welcome_frame = read_frame(sock, decoder);
  if (!welcome_frame) return 0;  // broker finished before we joined
  const WelcomeFrame welcome = parse_welcome(*welcome_frame);
  if (welcome.protocol != kProtocolVersion) {
    throw ProtocolError(strfmt(
        "broker speaks protocol %u, this worker speaks %u", welcome.protocol,
        kProtocolVersion));
  }
  sweep::PointExecutor& exec =
      executor(welcome.max_cycles, welcome.max_attempts);

  std::size_t executed = 0;
  while (true) {
    if (!send_frame(sock, encode_request())) break;
    std::optional<Frame> frame;
    do {  // acks for heartbeats sent during the previous point queue up
      frame = read_frame(sock, decoder);
    } while (frame && frame->type == FrameType::kHeartbeatAck);
    if (!frame || frame->type == FrameType::kNoWork) break;
    const AssignFrame assign = parse_assign(*frame);

    sweep::PointResult point;
    point.index = static_cast<std::size_t>(assign.index);
    point.config = assign.config;

    // Heartbeat pump: renews the lease and streams elapsed-time progress
    // while the point runs. Joined before RESULT goes out, so the socket
    // never sees interleaved writes.
    std::atomic<bool> done{false};
    std::mutex pump_mutex;
    std::condition_variable pump_cv;
    std::thread pump([&] {
      const auto cadence = std::chrono::milliseconds(
          std::max<std::uint64_t>(welcome.heartbeat_ms, 1));
      const auto start = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lock(pump_mutex);
      while (!pump_cv.wait_for(lock, cadence, [&] { return done.load(); })) {
        if (!send_frame(sock, encode_heartbeat({assign.index}))) return;
        ProgressFrame progress;
        progress.index = assign.index;
        progress.phase = "running";
        progress.value = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        if (!send_frame(sock, encode_progress(progress))) return;
      }
    });
    exec.run_point(point);
    ++executed;
    {
      const std::lock_guard<std::mutex> lock(pump_mutex);
      done.store(true);
    }
    pump_cv.notify_all();
    pump.join();

    if (options_.crash_before_result &&
        options_.crash_before_result(point.index)) {
      sock.close();  // simulated crash: no RESULT, no goodbye
      return executed;
    }
    ResultFrame result;
    result.index = assign.index;
    result.point = std::move(point);
    if (!send_frame(sock, encode_result(result))) break;
  }
  return executed;
}

}  // namespace coyote::campaign
