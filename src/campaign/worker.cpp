#include "campaign/worker.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <optional>
#include <thread>
#include <vector>

#include "campaign/net.h"
#include "campaign/protocol.h"
#include "common/error.h"
#include "common/rng.h"

namespace coyote::campaign {

namespace {

bool send_frame(Socket& sock, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  return sock.write_all(wire.data(), wire.size());
}

enum class ReadStatus { kFrame, kEof, kTimeout };

/// Reads the next frame with a deadline: kFrame fills `out`, kEof means
/// the broker closed or reset, kTimeout means `timeout_ms` of silence.
/// Decoder exceptions (corrupt stream) propagate to the caller.
ReadStatus read_frame_within(Socket& sock, FrameDecoder& decoder,
                             int timeout_ms, Frame* out) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (auto frame = decoder.next()) {
      *out = std::move(*frame);
      return ReadStatus::kFrame;
    }
    char buf[4096];
    const long n = sock.read_some(buf, sizeof buf);
    if (n < 0) return ReadStatus::kEof;
    if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (remaining <= 0) return ReadStatus::kTimeout;
    wait_readable(sock.fd(), static_cast<int>(remaining));
  }
}

/// After a failed send, the broker may already have said goodbye: drain
/// whatever is buffered (without waiting) and report a SHUTDOWN reason if
/// one is in there, so "broker finished while my RESULT was in flight"
/// resolves as completion, not loss.
std::optional<ShutdownReason> drain_for_shutdown(Socket& sock,
                                                 FrameDecoder& decoder) {
  try {
    char buf[4096];
    while (true) {
      const long n = sock.read_some(buf, sizeof buf);
      if (n <= 0) break;
      decoder.feed(buf, static_cast<std::size_t>(n));
    }
    while (auto frame = decoder.next()) {
      if (frame->type == FrameType::kShutdown) {
        return parse_shutdown(*frame).reason;
      }
    }
  } catch (const std::exception&) {
    // Corrupt trailing bytes: no goodbye, then.
  }
  return std::nullopt;
}

}  // namespace

Worker::Worker(Options options) : options_(std::move(options)) {
  if (options_.name.empty()) {
    options_.name = "pid" + std::to_string(::getpid());
  }
  if (options_.jobs == 0) options_.jobs = 1;
  if (options_.backoff_base.count() <= 0) {
    options_.backoff_base = std::chrono::milliseconds(1);
  }
  if (options_.backoff_max < options_.backoff_base) {
    options_.backoff_max = options_.backoff_base;
  }
}

sweep::PointExecutor& Worker::executor(std::uint64_t max_cycles,
                                       std::uint32_t max_attempts) {
  const std::lock_guard<std::mutex> lock(executor_mutex_);
  if (!executor_) {
    sweep::PointExecutor::Options exec;
    exec.max_cycles = static_cast<Cycle>(max_cycles);
    exec.max_attempts = max_attempts;
    // No resume_dir: persistence is the broker's job; workers stay
    // stateless so killing one loses nothing.
    executor_ = std::make_unique<sweep::PointExecutor>(std::move(exec));
  }
  return *executor_;
}

std::size_t Worker::run() {
  if (options_.jobs == 1) return run_connection(0);
  std::vector<std::thread> threads;
  std::atomic<std::size_t> executed{0};
  std::vector<std::string> errors(options_.jobs);
  threads.reserve(options_.jobs);
  for (unsigned slot = 0; slot < options_.jobs; ++slot) {
    threads.emplace_back([this, slot, &executed, &errors] {
      try {
        executed += run_connection(slot);
      } catch (const std::exception& e) {
        errors[slot] = e.what();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& error : errors) {
    if (!error.empty()) throw SimError("campaign worker: " + error);
  }
  return executed.load();
}

std::size_t Worker::run_connection(unsigned slot) {
  // Jitter stream: seeded so chaos tests replay identical reconnect
  // schedules, slot-mixed so a multi-job worker's slots don't stampede in
  // lockstep.
  SplitMix64 mix(options_.backoff_seed);
  Xoshiro256 rng(mix.next() ^ (0x9E3779B97F4A7C15ULL * (slot + 1)));

  std::size_t executed = 0;
  std::optional<std::chrono::steady_clock::time_point> lost_since;
  unsigned attempt = 0;
  while (true) {
    const SessionOutcome outcome = run_session(slot, executed);
    if (outcome.kind == SessionOutcome::Kind::kComplete) return executed;
    if (outcome.kind == SessionOutcome::Kind::kFatal) {
      throw SimError("campaign worker: " + outcome.detail);
    }
    const auto now = std::chrono::steady_clock::now();
    if (outcome.welcomed || !lost_since) {
      // A completed handshake proves the broker was reachable: this loss
      // is fresh, so it earns a full reconnect window and reset backoff.
      lost_since = now;
      if (outcome.welcomed) attempt = 0;
    }
    if (now - *lost_since >= options_.reconnect_window) {
      throw SimError(strfmt(
          "campaign worker: broker lost and not back within %lld ms (%s)",
          static_cast<long long>(options_.reconnect_window.count()),
          outcome.detail.empty() ? "gone" : outcome.detail.c_str()));
    }
    const std::uint64_t shift = std::min<unsigned>(attempt, 20);
    const auto ceiling = std::min<std::int64_t>(
        options_.backoff_base.count() << shift, options_.backoff_max.count());
    const double jitter = 0.5 + rng.uniform() * 0.5;  // [0.5, 1.0)
    const auto delay = std::chrono::milliseconds(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                      static_cast<double>(ceiling) * jitter)));
    ++attempt;
    std::this_thread::sleep_for(delay);
  }
}

Worker::SessionOutcome Worker::run_session(unsigned slot,
                                           std::size_t& executed) {
  SessionOutcome outcome;
  Socket sock;
  try {
    sock = Socket::connect_tcp(options_.host, options_.port);
  } catch (const std::exception& e) {
    outcome.detail = e.what();
    return outcome;
  }
  sock.set_nonblocking(true);
  FrameDecoder decoder;

  HelloFrame hello;
  hello.worker = options_.jobs > 1
                     ? options_.name + "#" + std::to_string(slot)
                     : options_.name;
  if (!send_frame(sock, encode_hello(hello))) {
    outcome.detail = "HELLO send failed";
    return outcome;
  }
  Frame frame;
  try {
    const ReadStatus status = read_frame_within(
        sock, decoder, static_cast<int>(options_.handshake_timeout.count()),
        &frame);
    if (status == ReadStatus::kEof) {
      outcome.detail = "broker closed during handshake";
      return outcome;
    }
    if (status == ReadStatus::kTimeout) {
      outcome.detail = "handshake timeout";
      return outcome;
    }
    if (frame.type == FrameType::kError) {
      const ErrorFrame error = parse_error(frame);
      outcome.kind = SessionOutcome::Kind::kFatal;
      outcome.detail = "broker refused: " + error.message;
      return outcome;
    }
    const WelcomeFrame welcome = parse_welcome(frame);
    if (welcome.protocol != kProtocolVersion) {
      outcome.kind = SessionOutcome::Kind::kFatal;
      outcome.detail = strfmt(
          "broker speaks protocol %u, this worker speaks %u",
          welcome.protocol, kProtocolVersion);
      return outcome;
    }
    outcome.welcomed = true;

    sweep::PointExecutor& exec =
        executor(welcome.max_cycles, welcome.max_attempts);
    // Read deadline: the broker heartbeats nothing on its own, but it acks
    // every HEARTBEAT — so after this much silence we probe with a ping
    // (kPingIndex renews no lease) and after two silent deadlines in a row
    // declare the broker lost. Generous enough that a legitimately parked
    // worker (all points leased elsewhere) never false-positives.
    const int deadline_ms = static_cast<int>(
        std::max<std::uint64_t>(3 * welcome.heartbeat_ms, 500));
    unsigned silent = 0;
    bool standby = false;  // true after NO_WORK: wait, don't re-request
    while (true) {
      if (!standby && !send_frame(sock, encode_request())) {
        if (drain_for_shutdown(sock, decoder) ==
            ShutdownReason::kCampaignComplete) {
          outcome.kind = SessionOutcome::Kind::kComplete;
          return outcome;
        }
        outcome.detail = "REQUEST send failed";
        return outcome;
      }
      // Await the broker's answer, skipping queued heartbeat acks and
      // probing through silence.
      while (true) {
        const ReadStatus status =
            read_frame_within(sock, decoder, deadline_ms, &frame);
        if (status == ReadStatus::kEof) {
          outcome.detail = "broker closed connection";
          return outcome;
        }
        if (status == ReadStatus::kTimeout) {
          if (++silent >= 2) {
            outcome.detail = "broker silent past read deadline";
            return outcome;
          }
          if (!send_frame(sock, encode_heartbeat({kPingIndex}))) {
            outcome.detail = "ping send failed";
            return outcome;
          }
          continue;
        }
        silent = 0;
        if (frame.type != FrameType::kHeartbeatAck) break;
      }
      if (frame.type == FrameType::kNoWork) {
        // Draining broker: stand by for its SHUTDOWN instead of spamming
        // REQUEST; pings keep the link's liveness check running.
        standby = true;
        continue;
      }
      if (frame.type == FrameType::kShutdown) {
        const ShutdownFrame shutdown = parse_shutdown(frame);
        if (shutdown.reason == ShutdownReason::kCampaignComplete) {
          outcome.kind = SessionOutcome::Kind::kComplete;
          return outcome;
        }
        outcome.detail = "broker draining: " + shutdown.message;
        return outcome;
      }
      if (frame.type == FrameType::kError) {
        const ErrorFrame error = parse_error(frame);
        if (error.code == ErrorCode::kProtocolMismatch ||
            error.code == ErrorCode::kQuarantined) {
          outcome.kind = SessionOutcome::Kind::kFatal;
          outcome.detail = "broker refused: " + error.message;
          return outcome;
        }
        // kMalformedFrame / kUnexpectedFrame: our bytes got mangled in
        // transit — reconnect with a clean stream and carry on.
        outcome.detail = "broker dropped us: " + error.message;
        return outcome;
      }
      standby = false;
      const AssignFrame assign = parse_assign(frame);

      sweep::PointResult point;
      point.index = static_cast<std::size_t>(assign.index);
      point.config = assign.config;

      // Heartbeat pump: renews the lease and streams elapsed-time progress
      // while the point runs. Joined before RESULT goes out, so the socket
      // never sees interleaved writes.
      std::atomic<bool> done{false};
      std::mutex pump_mutex;
      std::condition_variable pump_cv;
      std::thread pump([&] {
        const auto cadence = std::chrono::milliseconds(
            std::max<std::uint64_t>(welcome.heartbeat_ms, 1));
        const auto start = std::chrono::steady_clock::now();
        std::unique_lock<std::mutex> lock(pump_mutex);
        while (
            !pump_cv.wait_for(lock, cadence, [&] { return done.load(); })) {
          if (!send_frame(sock, encode_heartbeat({assign.index}))) return;
          ProgressFrame progress;
          progress.index = assign.index;
          progress.phase = "running";
          progress.value = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count());
          if (!send_frame(sock, encode_progress(progress))) return;
        }
      });
      exec.run_point(point);
      ++executed;
      {
        const std::lock_guard<std::mutex> lock(pump_mutex);
        done.store(true);
      }
      pump_cv.notify_all();
      pump.join();

      if (options_.crash_before_result &&
          options_.crash_before_result(point.index)) {
        sock.close();  // simulated crash: no RESULT, no goodbye, no retry
        outcome.kind = SessionOutcome::Kind::kComplete;
        return outcome;
      }
      ResultFrame result;
      result.index = assign.index;
      result.point = std::move(point);
      if (!send_frame(sock, encode_result(result))) {
        if (drain_for_shutdown(sock, decoder) ==
            ShutdownReason::kCampaignComplete) {
          outcome.kind = SessionOutcome::Kind::kComplete;
          return outcome;
        }
        outcome.detail = "RESULT send failed";
        return outcome;
      }
    }
  } catch (const ProtocolError& e) {
    // Corrupt inbound stream (chaos, splice, truncation): the session is
    // unusable but a fresh connection starts clean.
    outcome.detail = std::string("corrupt stream from broker: ") + e.what();
    outcome.kind = SessionOutcome::Kind::kLost;
    return outcome;
  }
}

}  // namespace coyote::campaign
