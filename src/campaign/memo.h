// Content-addressed memoisation of campaign point results. Every entry is
// one file named by the point's normalized-config hash (the PR 5 golden
// cache's keying, promoted to a content address — see
// core::config_map_hash), holding the shared point record. A campaign that
// revisits a design point any other campaign already ran — common when
// resilience studies and capacity sweeps share a baseline machine — replays
// the stored record instead of simulating, and because the record carries
// everything the results table renders, memo-warm tables are byte-identical
// to cold ones.
//
// Hash collisions cannot poison results: the stored record carries its
// full config map, a load verifies it against the expected normalized map,
// and a mismatch is a miss (plus a warning naming both configs — the
// situation `coyote_sweep --dry-run` exists to debug). Corrupt or
// truncated entries are likewise misses with a warning, never errors.
#pragma once

#include <cstdint>
#include <string>

#include "simfw/params.h"
#include "sweep/sweep.h"

namespace coyote::campaign {

class MemoStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir`.
  explicit MemoStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Loads the entry for `key` into `point` (all fields except index) iff
  /// it exists, parses, and its stored config equals `expect`. Returns
  /// false — a miss — otherwise.
  bool try_load(std::uint64_t key, const simfw::ConfigMap& expect,
                sweep::PointResult& point) const;

  /// Records `point` under `key` (crash-safe tmp + rename; concurrent
  /// writers of the same key are deterministic-equal, so last-wins is
  /// fine). Only successful points are worth memoising; callers skip
  /// failures and timeouts.
  void store(std::uint64_t key, const sweep::PointResult& point) const;

  /// The entry path for `key` ("<dir>/<16-hex>.memo"); tests and --dry-run
  /// use it to name collisions.
  std::string entry_path(std::uint64_t key) const;

 private:
  std::string dir_;
};

}  // namespace coyote::campaign
