// The campaign broker: owns the SweepSpec, serves its points to any number
// of worker processes over the wire protocol, and assembles the final
// results table. The broker is the only writer of campaign state — workers
// are stateless executors — which is what makes the whole service
// crash-tolerant and byte-deterministic:
//
//  * Every point's result is persisted as a `.done` record (the sweep
//    engine's resume format) the moment it arrives; a restarted broker
//    resumes from those records exactly like `coyote_sweep --resume-dir`.
//  * Results of successful points are also published to a shared
//    content-addressed memo store keyed by normalized-config hash, so a
//    *different* campaign that visits the same design point replays it.
//  * Workers lease points with heartbeat-renewed deadlines; a crash,
//    disconnect or missed deadline returns the point to the pending pool,
//    lowest index first, and whoever asks next runs it. Results are a pure
//    function of the point, so reassignment (and late duplicate results)
//    cannot change the table.
//
// The event loop is single-threaded (poll over the listener and every
// connection), so broker state needs no locks and every decision is made
// in one deterministic place.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/lease.h"
#include "campaign/memo.h"
#include "campaign/net.h"
#include "campaign/protocol.h"
#include "sweep/progress.h"
#include "sweep/sweep.h"

namespace coyote::campaign {

class Broker {
 public:
  struct Options {
    /// Lease duration: a worker that neither heartbeats nor delivers for
    /// this long forfeits its point.
    std::chrono::milliseconds lease{10'000};
    /// Heartbeat cadence advertised to workers (the lease is renewed on
    /// every heartbeat, so lease > 2-3 heartbeats tolerates jitter).
    std::chrono::milliseconds heartbeat{2'000};
    /// Per-point execution options, shipped to workers in WELCOME so
    /// remote execution matches `coyote_sweep --jobs=1` exactly.
    Cycle max_cycles = ~Cycle{0};
    std::uint32_t max_attempts = 2;
    /// Campaign state directory: per-point `.done` records for restart
    /// and reassignment. Empty = in-memory only.
    std::string state_dir;
    /// Content-addressed memo store for cross-campaign reuse. Empty = off.
    std::string memo_dir;
    sweep::ProgressMode progress = sweep::ProgressMode::kNone;
    /// Progress stream override (tests); nullptr = stderr.
    std::FILE* progress_out = nullptr;
    /// Injected time source for lease bookkeeping.
    Clock clock;
    /// Graceful-drain grace period: after request_drain() the broker stops
    /// assigning, answers REQUEST with NO_WORK, and waits this long for
    /// in-flight leases to deliver before broadcasting SHUTDOWN and
    /// returning. A lease that expires during the drain goes back to
    /// pending (resumable), never to another worker.
    std::chrono::milliseconds drain_grace{5'000};
    /// Concurrent-connection cap: accepts beyond it are parked in the
    /// kernel's listen backlog instead of growing broker state unboundedly;
    /// they are admitted as existing connections drop.
    std::size_t max_conns = 256;
    /// A helloed connection silent for this long is presumed dead and
    /// dropped (its lease is requeued); a connection that never completes
    /// HELLO gets one lease duration to speak. 0 = 3x the lease duration.
    std::chrono::milliseconds idle_timeout{0};
    /// Quarantine: an address racking up this many protocol errors is
    /// refused (typed ERROR, then close) for `quarantine_cooldown`, so one
    /// bad client cannot spin the accept loop. 0 disables quarantining.
    unsigned quarantine_strikes = 4;
    std::chrono::milliseconds quarantine_cooldown{10'000};
  };

  /// Expands the spec and pre-resolves points from `.done` records and the
  /// memo store. Points resolved here never reach a worker.
  Broker(const sweep::SweepSpec& spec, Options options);

  /// Binds the service socket (port 0 = kernel-assigned).
  std::uint16_t listen(const std::string& host, std::uint16_t port);
  std::uint16_t port() const { return listener_.local_port(); }

  std::size_t num_points() const { return points_.size(); }
  /// Points already resolved (resume/memo prefill, plus results so far).
  std::size_t num_done() const { return lease_.num_done(); }

  /// Runs the event loop until every point has a result (or request_stop),
  /// then releases every worker with NO_WORK and returns the table —
  /// byte-identical (host timings excluded) to SweepEngine jobs=1 on the
  /// same spec.
  sweep::SweepReport serve();

  /// Asks a serve() running on another thread to wind down after its
  /// current poll tick (tests, signal handlers).
  void request_stop() { stop_.store(true); }

  /// Flips the broker into graceful drain (async-signal-safe: one atomic
  /// store): stop assigning, answer REQUEST with NO_WORK, wait up to
  /// drain_grace for in-flight leases, persist what arrives, broadcast
  /// SHUTDOWN{kDraining}, and return from serve(). A broker restarted from
  /// the same --state-dir resumes exactly where the drain left off.
  void request_drain() { drain_.store(true); }

  /// True when the last serve() returned without a full table — it was
  /// drained or stopped mid-campaign. Callers map this to a distinct exit
  /// code so scripts can tell "drained, restart me" from "failed".
  bool drained_incomplete() const { return drained_incomplete_; }

 private:
  struct Conn {
    Socket sock;
    FrameDecoder decoder;
    std::uint64_t id = 0;
    std::string name;
    std::string addr;                    ///< peer IPv4, quarantine key
    bool helloed = false;
    bool waiting = false;                ///< parked REQUEST
    std::optional<std::size_t> point;    ///< what this conn is running
    TimePoint last_activity{};           ///< last byte received
  };

  /// A peer's protocol-offence ledger entry.
  struct Offender {
    unsigned strikes = 0;
    TimePoint until{};  ///< refused while now < until (once over threshold)
  };

  /// Thrown by handle_frame for contract violations that deserve a typed
  /// ERROR reply (protocol mismatch, out-of-contract frames) before the
  /// connection is closed and the address striked.
  struct PeerMisbehaved {
    ErrorCode code;
    std::string what;
  };

  void prefill_from_records();
  /// One event-loop iteration: poll, accept (quarantine + cap checks),
  /// read/handle frames, reap idle peers, expire leases, dispatch parked
  /// requests.
  void tick(int timeout_ms);
  int poll_timeout_ms() const;
  void dispatch_waiting(TimePoint now);
  bool assign_point(Conn& conn, TimePoint now);
  /// Returns false when the connection must be dropped.
  bool handle_frame(Conn& conn, const Frame& frame, TimePoint now);
  void finalize_result(std::size_t index, sweep::PointResult point,
                       const std::string& source);
  void drop_conn(std::uint64_t id, const std::string& why);
  std::string done_path(std::size_t index) const;
  /// Records a protocol offence by `addr`; over the threshold the address
  /// is refused for the cooldown.
  void strike(const std::string& addr, TimePoint now);
  bool quarantined(const std::string& addr, TimePoint now);
  std::chrono::milliseconds idle_timeout() const;
  void broadcast_shutdown(ShutdownReason reason, const std::string& message);
  bool draining() const { return drain_.load(std::memory_order_relaxed); }

  Options options_;
  sweep::SweepSpec spec_;
  std::vector<simfw::ConfigMap> points_;  ///< raw expanded maps
  /// Per-point normalized map + content hash; nullopt when the point's
  /// config does not parse (it still runs — and fails — on a worker, just
  /// like in process; only persistence/memoisation are skipped).
  std::vector<std::optional<simfw::ConfigMap>> normalized_;
  std::vector<std::uint64_t> memo_key_;
  sweep::SweepReport report_;
  LeaseTable lease_;
  std::unique_ptr<MemoStore> memo_;
  sweep::ProgressSink sink_;
  Socket listener_;
  std::map<std::uint64_t, Conn> conns_;
  std::vector<std::uint64_t> wait_queue_;  ///< FIFO of parked conn ids
  std::map<std::string, Offender> offenders_;
  std::uint64_t next_conn_id_ = 1;
  bool any_helloed_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_{false};
  std::optional<TimePoint> drain_deadline_;
  bool drained_incomplete_ = false;
};

}  // namespace coyote::campaign
