// Sparse physical memory for baremetal simulation. Pages are allocated on
// first touch; the simulated address space is flat (no translation — Coyote
// runs baremetal, as Spike does inside the original tool).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/binio.h"
#include "common/error.h"
#include "common/types.h"

namespace coyote::iss {

class SparseMemory {
 public:
  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageSize = 1ULL << kPageBits;
  /// LR/SC reservation granule (one cache line, as real implementations
  /// track): any store overlapping the granule kills the reservation.
  static constexpr Addr kReservationGranule = 64;

  SparseMemory() = default;
  SparseMemory(const SparseMemory&) = delete;
  SparseMemory& operator=(const SparseMemory&) = delete;

  /// Number of resident (touched) pages.
  std::size_t resident_pages() const { return pages_.size(); }

  /// Resident page indices, sorted. Deterministic enumeration for the
  /// fault engine (a seeded word flip picks page + offset from this list)
  /// and for the end-state digest of the differential harness.
  std::vector<Addr> resident_page_indices() const {
    std::vector<Addr> indices;
    indices.reserve(pages_.size());
    for (const auto& [index, page] : pages_) {
      (void)page;
      indices.push_back(index);
    }
    std::sort(indices.begin(), indices.end());
    return indices;
  }

  /// Raw page bytes (nullptr when the page is not resident).
  const std::uint8_t* page_data(Addr page_index) const {
    const auto it = pages_.find(page_index);
    return it == pages_.end() ? nullptr : it->second->data.data();
  }

  // ----- page write generations -----
  // Every write bumps the touched page's generation counter. Decoded-state
  // caches (the per-core decode cache and the decoded-basic-block cache)
  // record the generation of the code page they decoded from and treat a
  // mismatch as "the bytes may have changed — re-decode". The counter is
  // host-side bookkeeping, not guest state: it is never serialized, so the
  // checkpoint byte stream is unchanged and a restored run starts every
  // page back at generation zero (with all decoded caches flushed cold).

  /// Stable pointer to `page_index`'s write generation, or nullptr when the
  /// page is not resident. The pointer stays valid until load_state()
  /// replaces the page table (node-based map; pages are never erased).
  const std::uint64_t* page_write_gen_ptr(Addr page_index) const {
    const auto it = pages_.find(page_index);
    return it == pages_.end() ? nullptr : &it->second->write_gen;
  }

  /// Write generation of the page holding `addr` (0 when not resident).
  std::uint64_t page_write_gen_of(Addr addr) const {
    const std::uint64_t* gen = page_write_gen_ptr(addr >> kPageBits);
    return gen == nullptr ? 0 : *gen;
  }

  std::uint8_t read_u8(Addr addr) const { return *lookup(addr); }
  void write_u8(Addr addr, std::uint8_t value) {
    if (!reservations_.empty()) note_store(addr, 1);
    *touch(addr) = value;
  }

  // ----- LR/SC reservations -----
  // The table lives here, beside the single flat memory every hart executes
  // against, so a store by *any* hart (scalar, AMO or vector) kills every
  // overlapping reservation — the cross-hart invalidation the per-hart
  // implementation could not see. Clearing the writer's own reservation is
  // spec-legal (an SC is allowed to fail spuriously).

  /// Registers (or moves) `hart`'s reservation at `addr`.
  void set_reservation(unsigned hart, Addr addr) {
    for (Reservation& r : reservations_) {
      if (r.hart == hart) {
        r.addr = addr;
        return;
      }
    }
    reservations_.push_back(Reservation{hart, addr});
  }

  /// Consumes `hart`'s reservation; true iff it was still valid for `addr`.
  /// The reservation is cleared either way (SC always ends it).
  bool take_reservation(unsigned hart, Addr addr) {
    for (auto it = reservations_.begin(); it != reservations_.end(); ++it) {
      if (it->hart != hart) continue;
      const bool ok = it->addr == addr;
      reservations_.erase(it);
      return ok;
    }
    return false;
  }

  void clear_reservation(unsigned hart) {
    for (auto it = reservations_.begin(); it != reservations_.end(); ++it) {
      if (it->hart == hart) {
        reservations_.erase(it);
        return;
      }
    }
  }

  /// Little-endian typed accessors. T must be trivially copyable.
  template <typename T>
  T read(Addr addr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    if (same_page(addr, sizeof(T))) {
      std::memcpy(&value, lookup(addr), sizeof(T));
    } else {
      read_bytes(addr, reinterpret_cast<std::uint8_t*>(&value), sizeof(T));
    }
    return value;
  }

  template <typename T>
  void write(Addr addr, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (same_page(addr, sizeof(T))) {
      if (!reservations_.empty()) note_store(addr, sizeof(T));
      std::memcpy(touch(addr), &value, sizeof(T));
    } else {
      // The straddling path funnels through write_u8, which notes the
      // store per byte.
      write_bytes(addr, reinterpret_cast<const std::uint8_t*>(&value),
                  sizeof(T));
    }
  }

  void read_bytes(Addr addr, std::uint8_t* out, std::size_t count) const {
    for (std::size_t i = 0; i < count; ++i) out[i] = read_u8(addr + i);
  }
  void write_bytes(Addr addr, const std::uint8_t* data, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) write_u8(addr + i, data[i]);
  }

  /// Host-side convenience for loading programs/data and reading results.
  void poke_words(Addr addr, const std::vector<std::uint32_t>& words) {
    for (std::size_t i = 0; i < words.size(); ++i) {
      write<std::uint32_t>(addr + 4 * i, words[i]);
    }
  }
  template <typename T>
  void poke_array(Addr addr, const T* data, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      write<T>(addr + sizeof(T) * i, data[i]);
    }
  }
  template <typename T>
  std::vector<T> peek_array(Addr addr, std::size_t count) const {
    std::vector<T> out(count);
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = read<T>(addr + sizeof(T) * i);
    }
    return out;
  }

  /// Checkpoint: serializes every resident page (sorted by page index so the
  /// byte stream is independent of hash-map iteration order) plus the live
  /// LR/SC reservation table.
  void save_state(BinWriter& w) const {
    std::vector<Addr> indices;
    indices.reserve(pages_.size());
    for (const auto& [index, page] : pages_) indices.push_back(index);
    std::sort(indices.begin(), indices.end());
    w.u64(indices.size());
    for (Addr index : indices) {
      w.u64(index);
      w.bytes(pages_.at(index)->data.data(), kPageSize);
    }
    w.u64(reservations_.size());
    for (const Reservation& r : reservations_) {
      w.u32(static_cast<std::uint32_t>(r.hart));
      w.u64(r.addr);
    }
  }

  void load_state(BinReader& r) {
    pages_.clear();
    const std::uint64_t num_pages = r.count();
    for (std::uint64_t i = 0; i < num_pages; ++i) {
      const Addr index = r.u64();
      auto page = std::make_unique<PageRec>();
      r.bytes(page->data.data(), kPageSize);
      pages_.emplace(index, std::move(page));
    }
    reservations_.clear();
    const std::uint64_t num_res = r.count(1 << 20);
    for (std::uint64_t i = 0; i < num_res; ++i) {
      const unsigned hart = r.u32();
      const Addr addr = r.u64();
      reservations_.push_back(Reservation{hart, addr});
    }
  }

 private:
  using Page = std::array<std::uint8_t, kPageSize>;

  /// One resident page plus its write generation (see above). The
  /// generation lives beside the data so bumping it on a store touches the
  /// same allocation the store already brought into the host cache.
  struct PageRec {
    Page data{};
    std::uint64_t write_gen = 0;
  };

  struct Reservation {
    unsigned hart;
    Addr addr;  ///< the exact LR address (SC must match it)
  };

  /// Drops every reservation whose granule overlaps [addr, addr+size).
  void note_store(Addr addr, std::size_t size) {
    const Addr lo = addr & ~(kReservationGranule - 1);
    const Addr hi = (addr + size - 1) & ~(kReservationGranule - 1);
    for (auto it = reservations_.begin(); it != reservations_.end();) {
      const Addr granule = it->addr & ~(kReservationGranule - 1);
      if (granule >= lo && granule <= hi) {
        it = reservations_.erase(it);
      } else {
        ++it;
      }
    }
  }

  static bool same_page(Addr addr, std::size_t size) {
    return (addr >> kPageBits) == ((addr + size - 1) >> kPageBits);
  }

  const std::uint8_t* lookup(Addr addr) const {
    const Addr page_index = addr >> kPageBits;
    const auto it = pages_.find(page_index);
    if (it == pages_.end()) return zero_page_.data() + (addr & (kPageSize - 1));
    return it->second->data.data() + (addr & (kPageSize - 1));
  }

  std::uint8_t* touch(Addr addr) {
    const Addr page_index = addr >> kPageBits;
    auto it = pages_.find(page_index);
    if (it == pages_.end()) {
      it = pages_.emplace(page_index, std::make_unique<PageRec>()).first;
    }
    ++it->second->write_gen;
    return it->second->data.data() + (addr & (kPageSize - 1));
  }

  std::unordered_map<Addr, std::unique_ptr<PageRec>> pages_;
  /// Live LR reservations; tiny (≤ one per hart), scanned linearly. Kernels
  /// without LR in flight pay only an empty() check per store.
  std::vector<Reservation> reservations_;
  static const Page zero_page_;
};

}  // namespace coyote::iss
