// Narrow interfaces between a hart and a host-side syscall emulator,
// following the riscv-vp++ `iss_syscall_if` / `syscall_emulator_if` split:
// the emulator sees one hart only through a small window (registers, guest
// memory, cycle, console, exit), and the hart sees the emulator only as an
// opaque handler for `ecall` and HTIF `tohost` stores. CoreModel and Hart
// therefore stay loader-agnostic — src/loader implements the emulator side
// (the proxy kernel) without either of them knowing it exists.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.h"

namespace coyote {
class BinWriter;
class BinReader;
}  // namespace coyote

namespace coyote::iss {

class SparseMemory;

/// What a syscall emulator may do to the hart that trapped: the riscv-vp++
/// iss_syscall_if shape (register window + memory + exit), extended with
/// the simulated cycle (for deterministic time syscalls) and the hart's
/// console sink. Implementations are stack adapters created per trap.
class IssSyscallIf {
 public:
  virtual ~IssSyscallIf() = default;

  virtual unsigned hart_id() const = 0;
  /// x-register window (idx 0..31; writes to x0 are ignored).
  virtual std::uint64_t read_register(unsigned idx) const = 0;
  virtual void write_register(unsigned idx, std::uint64_t value) = 0;
  /// Guest memory, for buffer transfers. Accesses made through this window
  /// are host-side (untimed): the trapping instruction's timing footprint
  /// is the ecall / tohost store itself, exactly like the built-in path.
  virtual SparseMemory& guest_memory() = 0;
  /// Simulated cycle at the trap — the only clock a deterministic
  /// gettimeofday/clock_gettime may derive from.
  virtual Cycle cycle() const = 0;
  /// Appends to the hart's console capture (the write-syscall sink).
  virtual void console_write(std::string_view text) = 0;
  /// Marks the hart exited with `status` after the current instruction.
  virtual void sys_exit(std::int64_t status) = 0;
};

/// The emulator side: handles `ecall` traps and HTIF `tohost` stores for
/// any hart, through the window above. One emulator instance is shared by
/// every hart of a machine (per-hart state must key off hart_id()).
class SyscallEmulatorIf {
 public:
  virtual ~SyscallEmulatorIf() = default;

  /// Handles the ecall whose number is in a7 and arguments in a0..a5;
  /// writes the result to a0 (or calls sys_exit). Throws ExecutionError
  /// for syscalls the emulator does not implement.
  virtual void execute_syscall(IssSyscallIf& hart) = 0;
  /// Handles a store of `value` to the image's `tohost` symbol (the HTIF
  /// protocol: LSB set = exit(value >> 1), else a pk-style magic-mem
  /// syscall block).
  virtual void handle_tohost(IssSyscallIf& hart, std::uint64_t value) = 0;

  /// Checkpoint hooks: host-visible emulator state (brk cursor, ...) that
  /// must survive a save/restore cycle bit-identically.
  virtual void save_state(BinWriter& w) const = 0;
  virtual void load_state(BinReader& r) = 0;
};

}  // namespace coyote::iss
