// Vector-extension execution. Supports integral LMUL (m1..m8), SEW of
// 8/16/32/64, unmasked and v0.t-masked operation, unit-stride / strided /
// indexed-unordered memory, and the arithmetic subset listed in inst.h.
// Element accesses of vector loads/stores are recorded individually so the
// cache model sees the true per-element traffic (a gather really does touch
// many lines — the behaviour the paper's SpMV studies depend on).
#include <cmath>
#include <cstring>

#include "common/bits.h"
#include "common/error.h"
#include "isa/disasm.h"
#include "iss/hart.h"

namespace coyote::iss {

using isa::DecodedInst;
using isa::Op;

namespace {

double bits_to_double(std::uint64_t bits64) {
  double value;
  std::memcpy(&value, &bits64, 8);
  return value;
}
std::uint64_t double_to_bits(double value) {
  std::uint64_t bits64;
  std::memcpy(&bits64, &value, 8);
  return bits64;
}
float bits_to_float(std::uint32_t bits32) {
  float value;
  std::memcpy(&value, &bits32, 4);
  return value;
}
std::uint32_t float_to_bits(float value) {
  std::uint32_t bits32;
  std::memcpy(&bits32, &value, 4);
  return bits32;
}

}  // namespace

std::uint64_t Hart::velem_get(unsigned vreg, unsigned element,
                              unsigned sew_bits) const {
  const std::size_t byte_offset =
      static_cast<std::size_t>(element) * (sew_bits / 8);
  const std::uint8_t* base = vreg_data(vreg) + byte_offset;
  switch (sew_bits) {
    case 8: return *base;
    case 16: {
      std::uint16_t v;
      std::memcpy(&v, base, 2);
      return v;
    }
    case 32: {
      std::uint32_t v;
      std::memcpy(&v, base, 4);
      return v;
    }
    case 64: {
      std::uint64_t v;
      std::memcpy(&v, base, 8);
      return v;
    }
    default:
      throw ExecutionError(strfmt("bad SEW %u", sew_bits));
  }
}

void Hart::velem_set(unsigned vreg, unsigned element, unsigned sew_bits,
                     std::uint64_t value) {
  const std::size_t byte_offset =
      static_cast<std::size_t>(element) * (sew_bits / 8);
  std::uint8_t* base = vreg_data(vreg) + byte_offset;
  switch (sew_bits) {
    case 8: *base = static_cast<std::uint8_t>(value); return;
    case 16: {
      const auto v = static_cast<std::uint16_t>(value);
      std::memcpy(base, &v, 2);
      return;
    }
    case 32: {
      const auto v = static_cast<std::uint32_t>(value);
      std::memcpy(base, &v, 4);
      return;
    }
    case 64: std::memcpy(base, &value, 8); return;
    default:
      throw ExecutionError(strfmt("bad SEW %u", sew_bits));
  }
}

bool Hart::vmask_bit(unsigned element) const {
  return (vreg_data(0)[element / 8] >> (element % 8)) & 1;
}

void Hart::vmask_set(unsigned vreg, unsigned element, bool value) {
  std::uint8_t& byte = vreg_data(vreg)[element / 8];
  if (value) {
    byte |= static_cast<std::uint8_t>(1u << (element % 8));
  } else {
    byte &= static_cast<std::uint8_t>(~(1u << (element % 8)));
  }
}

void Hart::vset(const DecodedInst& inst) {
  std::uint64_t new_vtype;
  if (inst.op == Op::kVsetvl) {
    new_vtype = x_[inst.rs2];
  } else {
    new_vtype = static_cast<std::uint64_t>(inst.imm);
  }
  const unsigned lmul_code = new_vtype & 0x7;
  const unsigned sew_code = (new_vtype >> 3) & 0x7;
  if (lmul_code > 3 || sew_code > 3) {
    throw ExecutionError(strfmt(
        "core %u: unsupported vtype 0x%llx (fractional LMUL or SEW>64)", id_,
        static_cast<unsigned long long>(new_vtype)));
  }
  const std::uint64_t vlmax =
      (static_cast<std::uint64_t>(1) << lmul_code) * vlen_bits_ /
      (8u << sew_code);

  std::uint64_t avl;
  if (inst.op == Op::kVsetivli) {
    avl = inst.uimm;
  } else if (inst.rs1 != 0) {
    avl = x_[inst.rs1];
  } else if (inst.rd != 0) {
    avl = ~std::uint64_t{0};
  } else {
    avl = vl_;
  }
  vl_ = std::min(avl, vlmax);
  vtype_ = new_vtype;
  if (inst.rd != 0) x_[inst.rd] = vl_;
}

void Hart::exec_vector(const DecodedInst& inst, StepInfo& info) {
  switch (inst.op) {
    case Op::kVsetvli:
    case Op::kVsetivli:
    case Op::kVsetvl:
      vset(inst);
      return;
    default:
      break;
  }

  const unsigned sewb = sew();
  const std::uint64_t vl = vl_;
  const auto active = [&](unsigned i) { return inst.vm || vmask_bit(i); };
  const auto sext = [&](std::uint64_t v, unsigned bits_count) {
    return static_cast<std::uint64_t>(sign_extend(v, bits_count));
  };

  // ----- memory -----
  const auto unit_load = [&](unsigned eew) {
    const Addr base = x_[inst.rs1];
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      const Addr addr = base + static_cast<Addr>(i) * (eew / 8);
      info.accesses.push_back(
          MemAccess{addr, static_cast<std::uint8_t>(eew / 8), false});
      std::uint64_t value = 0;
      memory_->read_bytes(addr, reinterpret_cast<std::uint8_t*>(&value),
                          eew / 8);
      velem_set(inst.rd, i, eew, value);
    }
  };
  const auto unit_store = [&](unsigned eew) {
    const Addr base = x_[inst.rs1];
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      const Addr addr = base + static_cast<Addr>(i) * (eew / 8);
      info.accesses.push_back(
          MemAccess{addr, static_cast<std::uint8_t>(eew / 8), true});
      const std::uint64_t value = velem_get(inst.rd, i, eew);
      memory_->write_bytes(addr, reinterpret_cast<const std::uint8_t*>(&value),
                           eew / 8);
    }
  };
  const auto strided_load = [&](unsigned eew) {
    const Addr base = x_[inst.rs1];
    const auto stride = static_cast<std::int64_t>(x_[inst.rs2]);
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      const Addr addr = base + static_cast<Addr>(stride * i);
      info.accesses.push_back(
          MemAccess{addr, static_cast<std::uint8_t>(eew / 8), false});
      std::uint64_t value = 0;
      memory_->read_bytes(addr, reinterpret_cast<std::uint8_t*>(&value),
                          eew / 8);
      velem_set(inst.rd, i, eew, value);
    }
  };
  const auto strided_store = [&](unsigned eew) {
    const Addr base = x_[inst.rs1];
    const auto stride = static_cast<std::int64_t>(x_[inst.rs2]);
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      const Addr addr = base + static_cast<Addr>(stride * i);
      info.accesses.push_back(
          MemAccess{addr, static_cast<std::uint8_t>(eew / 8), true});
      const std::uint64_t value = velem_get(inst.rd, i, eew);
      memory_->write_bytes(addr, reinterpret_cast<const std::uint8_t*>(&value),
                           eew / 8);
    }
  };
  // Indexed: index EEW comes from the instruction, data width is SEW.
  const auto indexed_load = [&](unsigned index_eew) {
    const Addr base = x_[inst.rs1];
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      const Addr addr = base + velem_get(inst.rs2, i, index_eew);
      info.accesses.push_back(
          MemAccess{addr, static_cast<std::uint8_t>(sewb / 8), false});
      std::uint64_t value = 0;
      memory_->read_bytes(addr, reinterpret_cast<std::uint8_t*>(&value),
                          sewb / 8);
      velem_set(inst.rd, i, sewb, value);
    }
  };
  const auto indexed_store = [&](unsigned index_eew) {
    const Addr base = x_[inst.rs1];
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      const Addr addr = base + velem_get(inst.rs2, i, index_eew);
      info.accesses.push_back(
          MemAccess{addr, static_cast<std::uint8_t>(sewb / 8), true});
      const std::uint64_t value = velem_get(inst.rd, i, sewb);
      memory_->write_bytes(addr, reinterpret_cast<const std::uint8_t*>(&value),
                           sewb / 8);
    }
  };

  // ----- arithmetic helper loops -----
  const auto binop_vv = [&](auto fn) {
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      velem_set(inst.rd, i, sewb,
                fn(velem_get(inst.rs2, i, sewb), velem_get(inst.rs1, i, sewb)));
    }
  };
  const auto binop_vx = [&](auto fn) {
    const std::uint64_t scalar = x_[inst.rs1];
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      velem_set(inst.rd, i, sewb, fn(velem_get(inst.rs2, i, sewb), scalar));
    }
  };
  const auto binop_vi = [&](auto fn) {
    const auto imm = static_cast<std::uint64_t>(inst.imm);
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      velem_set(inst.rd, i, sewb, fn(velem_get(inst.rs2, i, sewb), imm));
    }
  };
  const auto cmp_vv = [&](auto fn) {
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      vmask_set(inst.rd, i,
                fn(velem_get(inst.rs2, i, sewb), velem_get(inst.rs1, i, sewb)));
    }
  };
  const auto cmp_vx = [&](auto fn) {
    const std::uint64_t scalar = x_[inst.rs1];
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      vmask_set(inst.rd, i, fn(velem_get(inst.rs2, i, sewb), scalar));
    }
  };
  const auto cmp_vi = [&](auto fn) {
    const auto imm = static_cast<std::uint64_t>(inst.imm);
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      vmask_set(inst.rd, i, fn(velem_get(inst.rs2, i, sewb), imm));
    }
  };

  const auto require_fp_sew = [&]() {
    if (sewb != 32 && sewb != 64) {
      throw ExecutionError(strfmt(
          "core %u: FP vector op '%s' needs SEW 32 or 64 (have %u)", id_,
          isa::op_name(inst.op), sewb));
    }
  };
  // Runs `fn(a, b)` elementwise in the proper FP width.
  const auto fp_binop_vv = [&](auto fn) {
    require_fp_sew();
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      if (sewb == 64) {
        const double a = bits_to_double(velem_get(inst.rs2, i, 64));
        const double b = bits_to_double(velem_get(inst.rs1, i, 64));
        velem_set(inst.rd, i, 64, double_to_bits(fn(a, b)));
      } else {
        const float a = bits_to_float(velem_get(inst.rs2, i, 32));
        const float b = bits_to_float(velem_get(inst.rs1, i, 32));
        velem_set(inst.rd, i, 32,
                  float_to_bits(static_cast<float>(fn(a, b))));
      }
    }
  };
  const auto fp_binop_vf = [&](auto fn) {
    require_fp_sew();
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      if (sewb == 64) {
        const double a = bits_to_double(velem_get(inst.rs2, i, 64));
        const double b = bits_to_double(f_[inst.rs1]);
        velem_set(inst.rd, i, 64, double_to_bits(fn(a, b)));
      } else {
        const float a = bits_to_float(velem_get(inst.rs2, i, 32));
        const auto b = static_cast<float>(bits_to_double(f_[inst.rs1]));
        velem_set(inst.rd, i, 32,
                  float_to_bits(static_cast<float>(fn(a, b))));
      }
    }
  };
  // vd[i] = fn(vd[i], multiplicand, multiplier)
  const auto fp_fma_vv = [&](auto fn) {
    require_fp_sew();
    for (unsigned i = 0; i < vl; ++i) {
      if (!active(i)) continue;
      if (sewb == 64) {
        const double acc = bits_to_double(velem_get(inst.rd, i, 64));
        const double a = bits_to_double(velem_get(inst.rs1, i, 64));
        const double b = bits_to_double(velem_get(inst.rs2, i, 64));
        velem_set(inst.rd, i, 64, double_to_bits(fn(acc, a, b)));
      } else {
        const float acc = bits_to_float(velem_get(inst.rd, i, 32));
        const float a = bits_to_float(velem_get(inst.rs1, i, 32));
        const float b = bits_to_float(velem_get(inst.rs2, i, 32));
        velem_set(inst.rd, i, 32,
                  float_to_bits(static_cast<float>(fn(acc, a, b))));
      }
    }
  };

  const unsigned shift_mask = sewb - 1;

  switch (inst.op) {
    // ----- memory -----
    case Op::kVle8: unit_load(8); break;
    case Op::kVle16: unit_load(16); break;
    case Op::kVle32: unit_load(32); break;
    case Op::kVle64: unit_load(64); break;
    case Op::kVse8: unit_store(8); break;
    case Op::kVse16: unit_store(16); break;
    case Op::kVse32: unit_store(32); break;
    case Op::kVse64: unit_store(64); break;
    case Op::kVlse8: strided_load(8); break;
    case Op::kVlse16: strided_load(16); break;
    case Op::kVlse32: strided_load(32); break;
    case Op::kVlse64: strided_load(64); break;
    case Op::kVsse8: strided_store(8); break;
    case Op::kVsse16: strided_store(16); break;
    case Op::kVsse32: strided_store(32); break;
    case Op::kVsse64: strided_store(64); break;
    case Op::kVluxei8: indexed_load(8); break;
    case Op::kVluxei16: indexed_load(16); break;
    case Op::kVluxei32: indexed_load(32); break;
    case Op::kVluxei64: indexed_load(64); break;
    case Op::kVsuxei8: indexed_store(8); break;
    case Op::kVsuxei16: indexed_store(16); break;
    case Op::kVsuxei32: indexed_store(32); break;
    case Op::kVsuxei64: indexed_store(64); break;

    // ----- integer -----
    case Op::kVaddVV: binop_vv([](auto a, auto b) { return a + b; }); break;
    case Op::kVaddVX: binop_vx([](auto a, auto b) { return a + b; }); break;
    case Op::kVaddVI: binop_vi([](auto a, auto b) { return a + b; }); break;
    case Op::kVsubVV: binop_vv([](auto a, auto b) { return a - b; }); break;
    case Op::kVsubVX: binop_vx([](auto a, auto b) { return a - b; }); break;
    case Op::kVrsubVX: binop_vx([](auto a, auto b) { return b - a; }); break;
    case Op::kVrsubVI: binop_vi([](auto a, auto b) { return b - a; }); break;
    case Op::kVandVV: binop_vv([](auto a, auto b) { return a & b; }); break;
    case Op::kVandVX: binop_vx([](auto a, auto b) { return a & b; }); break;
    case Op::kVandVI: binop_vi([](auto a, auto b) { return a & b; }); break;
    case Op::kVorVV: binop_vv([](auto a, auto b) { return a | b; }); break;
    case Op::kVorVX: binop_vx([](auto a, auto b) { return a | b; }); break;
    case Op::kVorVI: binop_vi([](auto a, auto b) { return a | b; }); break;
    case Op::kVxorVV: binop_vv([](auto a, auto b) { return a ^ b; }); break;
    case Op::kVxorVX: binop_vx([](auto a, auto b) { return a ^ b; }); break;
    case Op::kVxorVI: binop_vi([](auto a, auto b) { return a ^ b; }); break;
    case Op::kVsllVV:
      binop_vv([&](auto a, auto b) { return a << (b & shift_mask); });
      break;
    case Op::kVsllVX:
      binop_vx([&](auto a, auto b) { return a << (b & shift_mask); });
      break;
    case Op::kVsllVI:
      binop_vi([&](auto a, auto b) { return a << (b & shift_mask); });
      break;
    case Op::kVsrlVV:
      binop_vv([&](std::uint64_t a, std::uint64_t b) {
        return (a & ((sewb == 64) ? ~0ULL : ((1ULL << sewb) - 1))) >>
               (b & shift_mask);
      });
      break;
    case Op::kVsrlVX:
      binop_vx([&](std::uint64_t a, std::uint64_t b) {
        return (a & ((sewb == 64) ? ~0ULL : ((1ULL << sewb) - 1))) >>
               (b & shift_mask);
      });
      break;
    case Op::kVsrlVI:
      binop_vi([&](std::uint64_t a, std::uint64_t b) {
        return (a & ((sewb == 64) ? ~0ULL : ((1ULL << sewb) - 1))) >>
               (b & shift_mask);
      });
      break;
    case Op::kVsraVV:
      binop_vv([&](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(sext(a, sewb)) >> (b & shift_mask));
      });
      break;
    case Op::kVsraVX:
      binop_vx([&](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(sext(a, sewb)) >> (b & shift_mask));
      });
      break;
    case Op::kVsraVI:
      binop_vi([&](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(sext(a, sewb)) >> (b & shift_mask));
      });
      break;
    case Op::kVminuVV:
      binop_vv([](auto a, auto b) { return a < b ? a : b; });
      break;
    case Op::kVmaxuVV:
      binop_vv([](auto a, auto b) { return a > b ? a : b; });
      break;
    case Op::kVminVV:
      binop_vv([&](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::int64_t>(sext(a, sewb)) <
                       static_cast<std::int64_t>(sext(b, sewb))
                   ? a : b;
      });
      break;
    case Op::kVmaxVV:
      binop_vv([&](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::int64_t>(sext(a, sewb)) >
                       static_cast<std::int64_t>(sext(b, sewb))
                   ? a : b;
      });
      break;
    case Op::kVmulVV: binop_vv([](auto a, auto b) { return a * b; }); break;
    case Op::kVmulVX: binop_vx([](auto a, auto b) { return a * b; }); break;
    case Op::kVdivVV:
      binop_vv([&](std::uint64_t a, std::uint64_t b) {
        const auto sa = static_cast<std::int64_t>(sext(a, sewb));
        const auto sb = static_cast<std::int64_t>(sext(b, sewb));
        if (sb == 0) return ~std::uint64_t{0};
        return static_cast<std::uint64_t>(sa / sb);
      });
      break;
    case Op::kVdivuVV:
      binop_vv([](std::uint64_t a, std::uint64_t b) {
        return b == 0 ? ~std::uint64_t{0} : a / b;
      });
      break;
    case Op::kVremVV:
      binop_vv([&](std::uint64_t a, std::uint64_t b) {
        const auto sa = static_cast<std::int64_t>(sext(a, sewb));
        const auto sb = static_cast<std::int64_t>(sext(b, sewb));
        if (sb == 0) return a;
        return static_cast<std::uint64_t>(sa % sb);
      });
      break;
    case Op::kVremuVV:
      binop_vv([](std::uint64_t a, std::uint64_t b) {
        return b == 0 ? a : a % b;
      });
      break;
    case Op::kVmaccVV:
      for (unsigned i = 0; i < vl; ++i) {
        if (!active(i)) continue;
        const std::uint64_t acc = velem_get(inst.rd, i, sewb);
        velem_set(inst.rd, i, sewb,
                  acc + velem_get(inst.rs1, i, sewb) *
                            velem_get(inst.rs2, i, sewb));
      }
      break;
    case Op::kVmaccVX:
      for (unsigned i = 0; i < vl; ++i) {
        if (!active(i)) continue;
        const std::uint64_t acc = velem_get(inst.rd, i, sewb);
        velem_set(inst.rd, i, sewb,
                  acc + x_[inst.rs1] * velem_get(inst.rs2, i, sewb));
      }
      break;
    case Op::kVmvVV:
      for (unsigned i = 0; i < vl; ++i) {
        velem_set(inst.rd, i, sewb, velem_get(inst.rs1, i, sewb));
      }
      break;
    case Op::kVmvVX:
      for (unsigned i = 0; i < vl; ++i) velem_set(inst.rd, i, sewb, x_[inst.rs1]);
      break;
    case Op::kVmvVI:
      for (unsigned i = 0; i < vl; ++i) {
        velem_set(inst.rd, i, sewb, static_cast<std::uint64_t>(inst.imm));
      }
      break;
    case Op::kVmergeVVM:
      for (unsigned i = 0; i < vl; ++i) {
        velem_set(inst.rd, i, sewb,
                  vmask_bit(i) ? velem_get(inst.rs1, i, sewb)
                               : velem_get(inst.rs2, i, sewb));
      }
      break;
    case Op::kVmergeVXM:
      for (unsigned i = 0; i < vl; ++i) {
        velem_set(inst.rd, i, sewb,
                  vmask_bit(i) ? x_[inst.rs1] : velem_get(inst.rs2, i, sewb));
      }
      break;
    case Op::kVidV:
      for (unsigned i = 0; i < vl; ++i) {
        if (!active(i)) continue;
        velem_set(inst.rd, i, sewb, i);
      }
      break;
    case Op::kVmvXS:
      if (inst.rd != 0) x_[inst.rd] = sext(velem_get(inst.rs2, 0, sewb), sewb);
      break;
    case Op::kVmvSX:
      if (vl > 0) velem_set(inst.rd, 0, sewb, x_[inst.rs1]);
      break;
    case Op::kVslide1downVX:
      for (unsigned i = 0; i + 1 < vl; ++i) {
        if (!active(i)) continue;
        velem_set(inst.rd, i, sewb, velem_get(inst.rs2, i + 1, sewb));
      }
      if (vl > 0 && active(vl - 1)) {
        velem_set(inst.rd, vl - 1, sewb, x_[inst.rs1]);
      }
      break;
    case Op::kVslidedownVX:
    case Op::kVslidedownVI: {
      const std::uint64_t offset = (inst.op == Op::kVslidedownVX)
                                       ? x_[inst.rs1]
                                       : static_cast<std::uint64_t>(inst.imm);
      for (unsigned i = 0; i < vl; ++i) {
        if (!active(i)) continue;
        const std::uint64_t src = i + offset;
        velem_set(inst.rd, i, sewb,
                  src < vl ? velem_get(inst.rs2, src, sewb) : 0);
      }
      break;
    }
    case Op::kVslideupVX:
    case Op::kVslideupVI: {
      const std::uint64_t offset = (inst.op == Op::kVslideupVX)
                                       ? x_[inst.rs1]
                                       : static_cast<std::uint64_t>(inst.imm);
      // Walk downward so an in-place slide does not clobber sources.
      for (unsigned i = vl; i-- > 0;) {
        if (i < offset || !active(i)) continue;
        velem_set(inst.rd, i, sewb, velem_get(inst.rs2, i - offset, sewb));
      }
      break;
    }
    case Op::kVrgatherVV:
      for (unsigned i = 0; i < vl; ++i) {
        if (!active(i)) continue;
        const std::uint64_t index = velem_get(inst.rs1, i, sewb);
        velem_set(inst.rd, i, sewb,
                  index < vl ? velem_get(inst.rs2, index, sewb) : 0);
      }
      break;

    // ----- compares -----
    case Op::kVmseqVV: cmp_vv([](auto a, auto b) { return a == b; }); break;
    case Op::kVmseqVX: cmp_vx([](auto a, auto b) { return a == b; }); break;
    case Op::kVmseqVI: cmp_vi([](auto a, auto b) { return a == b; }); break;
    case Op::kVmsneVV: cmp_vv([](auto a, auto b) { return a != b; }); break;
    case Op::kVmsneVX: cmp_vx([](auto a, auto b) { return a != b; }); break;
    case Op::kVmsltuVV: cmp_vv([](auto a, auto b) { return a < b; }); break;
    case Op::kVmsltuVX: cmp_vx([](auto a, auto b) { return a < b; }); break;
    case Op::kVmsltVV:
      cmp_vv([&](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::int64_t>(sext(a, sewb)) <
               static_cast<std::int64_t>(sext(b, sewb));
      });
      break;
    case Op::kVmsltVX:
      cmp_vx([&](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::int64_t>(sext(a, sewb)) <
               static_cast<std::int64_t>(sext(b, sewb));
      });
      break;
    case Op::kVmsleVV:
      cmp_vv([&](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::int64_t>(sext(a, sewb)) <=
               static_cast<std::int64_t>(sext(b, sewb));
      });
      break;
    case Op::kVmsleVX:
      cmp_vx([&](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::int64_t>(sext(a, sewb)) <=
               static_cast<std::int64_t>(sext(b, sewb));
      });
      break;

    // ----- integer reductions -----
    case Op::kVredsumVS: {
      std::uint64_t acc = velem_get(inst.rs1, 0, sewb);
      for (unsigned i = 0; i < vl; ++i) {
        if (!active(i)) continue;
        acc += velem_get(inst.rs2, i, sewb);
      }
      if (vl > 0) velem_set(inst.rd, 0, sewb, acc);
      break;
    }
    case Op::kVredmaxVS: {
      auto acc = static_cast<std::int64_t>(sext(velem_get(inst.rs1, 0, sewb), sewb));
      for (unsigned i = 0; i < vl; ++i) {
        if (!active(i)) continue;
        const auto v =
            static_cast<std::int64_t>(sext(velem_get(inst.rs2, i, sewb), sewb));
        acc = std::max(acc, v);
      }
      if (vl > 0) velem_set(inst.rd, 0, sewb, static_cast<std::uint64_t>(acc));
      break;
    }
    case Op::kVredminVS: {
      auto acc = static_cast<std::int64_t>(sext(velem_get(inst.rs1, 0, sewb), sewb));
      for (unsigned i = 0; i < vl; ++i) {
        if (!active(i)) continue;
        const auto v =
            static_cast<std::int64_t>(sext(velem_get(inst.rs2, i, sewb), sewb));
        acc = std::min(acc, v);
      }
      if (vl > 0) velem_set(inst.rd, 0, sewb, static_cast<std::uint64_t>(acc));
      break;
    }

    // ----- floating point -----
    case Op::kVfaddVV: fp_binop_vv([](auto a, auto b) { return a + b; }); break;
    case Op::kVfaddVF: fp_binop_vf([](auto a, auto b) { return a + b; }); break;
    case Op::kVfsubVV: fp_binop_vv([](auto a, auto b) { return a - b; }); break;
    case Op::kVfsubVF: fp_binop_vf([](auto a, auto b) { return a - b; }); break;
    case Op::kVfmulVV: fp_binop_vv([](auto a, auto b) { return a * b; }); break;
    case Op::kVfmulVF: fp_binop_vf([](auto a, auto b) { return a * b; }); break;
    case Op::kVfdivVV: fp_binop_vv([](auto a, auto b) { return a / b; }); break;
    case Op::kVfminVV:
      fp_binop_vv([](auto a, auto b) { return std::fmin(a, b); });
      break;
    case Op::kVfmaxVV:
      fp_binop_vv([](auto a, auto b) { return std::fmax(a, b); });
      break;
    case Op::kVfmaccVV:
      fp_fma_vv([](auto acc, auto a, auto b) { return std::fma(a, b, acc); });
      break;
    case Op::kVfnmaccVV:
      fp_fma_vv([](auto acc, auto a, auto b) { return std::fma(-a, b, -acc); });
      break;
    case Op::kVfmsacVV:
      fp_fma_vv([](auto acc, auto a, auto b) { return std::fma(a, b, -acc); });
      break;
    case Op::kVfmaddVV:
      // vd[i] = vd[i]*vs1[i] + vs2[i]
      fp_fma_vv([](auto acc, auto a, auto b) { return std::fma(acc, a, b); });
      break;
    case Op::kVfmaccVF:
      require_fp_sew();
      for (unsigned i = 0; i < vl; ++i) {
        if (!active(i)) continue;
        if (sewb == 64) {
          const double acc = bits_to_double(velem_get(inst.rd, i, 64));
          const double a = bits_to_double(f_[inst.rs1]);
          const double b = bits_to_double(velem_get(inst.rs2, i, 64));
          velem_set(inst.rd, i, 64, double_to_bits(std::fma(a, b, acc)));
        } else {
          const float acc = bits_to_float(velem_get(inst.rd, i, 32));
          const auto a = static_cast<float>(bits_to_double(f_[inst.rs1]));
          const float b = bits_to_float(velem_get(inst.rs2, i, 32));
          velem_set(inst.rd, i, 32, float_to_bits(std::fma(a, b, acc)));
        }
      }
      break;
    case Op::kVfmvVF:
      require_fp_sew();
      for (unsigned i = 0; i < vl; ++i) {
        if (sewb == 64) {
          velem_set(inst.rd, i, 64, f_[inst.rs1]);
        } else {
          velem_set(inst.rd, i, 32,
                    float_to_bits(static_cast<float>(bits_to_double(f_[inst.rs1]))));
        }
      }
      break;
    case Op::kVfmvFS:
      require_fp_sew();
      if (sewb == 64) {
        f_[inst.rd] = velem_get(inst.rs2, 0, 64);
      } else {
        f_[inst.rd] = 0xFFFFFFFF00000000ULL | velem_get(inst.rs2, 0, 32);
      }
      break;
    case Op::kVfmvSF:
      require_fp_sew();
      if (vl > 0) {
        if (sewb == 64) {
          velem_set(inst.rd, 0, 64, f_[inst.rs1]);
        } else {
          velem_set(inst.rd, 0, 32, static_cast<std::uint32_t>(f_[inst.rs1]));
        }
      }
      break;
    case Op::kVfredusumVS:
    case Op::kVfredosumVS: {
      require_fp_sew();
      if (sewb == 64) {
        double acc = bits_to_double(velem_get(inst.rs1, 0, 64));
        for (unsigned i = 0; i < vl; ++i) {
          if (!active(i)) continue;
          acc += bits_to_double(velem_get(inst.rs2, i, 64));
        }
        if (vl > 0) velem_set(inst.rd, 0, 64, double_to_bits(acc));
      } else {
        float acc = bits_to_float(velem_get(inst.rs1, 0, 32));
        for (unsigned i = 0; i < vl; ++i) {
          if (!active(i)) continue;
          acc += bits_to_float(velem_get(inst.rs2, i, 32));
        }
        if (vl > 0) velem_set(inst.rd, 0, 32, float_to_bits(acc));
      }
      break;
    }
    case Op::kVfredmaxVS:
    case Op::kVfredminVS: {
      require_fp_sew();
      const bool is_max = inst.op == Op::kVfredmaxVS;
      if (sewb == 64) {
        double acc = bits_to_double(velem_get(inst.rs1, 0, 64));
        for (unsigned i = 0; i < vl; ++i) {
          if (!active(i)) continue;
          const double v = bits_to_double(velem_get(inst.rs2, i, 64));
          acc = is_max ? std::fmax(acc, v) : std::fmin(acc, v);
        }
        if (vl > 0) velem_set(inst.rd, 0, 64, double_to_bits(acc));
      } else {
        float acc = bits_to_float(velem_get(inst.rs1, 0, 32));
        for (unsigned i = 0; i < vl; ++i) {
          if (!active(i)) continue;
          const float v = bits_to_float(velem_get(inst.rs2, i, 32));
          acc = is_max ? std::fmaxf(acc, v) : std::fminf(acc, v);
        }
        if (vl > 0) velem_set(inst.rd, 0, 32, float_to_bits(acc));
      }
      break;
    }

    default:
      throw ExecutionError(strfmt(
          "core %u: unimplemented vector instruction '%s' at pc 0x%llx", id_,
          isa::disassemble(inst).c_str(),
          static_cast<unsigned long long>(pc_)));
  }
}

}  // namespace coyote::iss
