// One RISC-V hardware thread: the architectural state (x/f/v register files,
// pc, the CSR subset) and the functional executor for the supported
// RV64IMFD+V instructions. The hart is purely functional — it has no notion
// of caches or timing. Every data-memory access an instruction performs is
// recorded into StepInfo so the enclosing CoreModel can drive the L1 models
// (this is the "minimally modified Spike" role from the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/inst.h"
#include "iss/memory.h"
#include "iss/syscall_if.h"

namespace coyote {
class BinWriter;
class BinReader;
}  // namespace coyote

namespace coyote::iss {

/// One recorded data-memory access.
struct MemAccess {
  Addr addr;
  std::uint8_t size;
  bool is_store;
};

/// Everything the wrapper needs to know about one executed instruction.
struct StepInfo {
  Addr pc = 0;                      ///< pc of the executed instruction
  std::vector<MemAccess> accesses;  ///< data accesses, in program order
  bool exited = false;              ///< the program requested termination
  std::int64_t exit_code = 0;

  void clear() {
    accesses.clear();
    exited = false;
    exit_code = 0;
  }
};

/// Vector-engine build parameters (VLEN in bits; ELEN is fixed at 64).
struct VectorConfig {
  unsigned vlen_bits = 512;
};

class Hart {
 public:
  Hart(CoreId id, SparseMemory* memory, VectorConfig vcfg = {});

  CoreId id() const { return id_; }
  unsigned vlen_bits() const { return vlen_bits_; }
  unsigned vlenb() const { return vlen_bits_ / 8; }

  /// Resets registers and sets the entry pc. The stack pointer is left to
  /// the program (kernels set it up themselves).
  void reset(Addr entry_pc);

  Addr pc() const { return pc_; }
  void set_pc(Addr pc) { pc_ = pc; }

  // ----- architectural state access (tests / host interface) -----
  std::uint64_t x(unsigned index) const { return x_[index]; }
  void set_x(unsigned index, std::uint64_t value) {
    if (index != 0) x_[index] = value;
  }
  std::uint64_t f_bits(unsigned index) const { return f_[index]; }
  void set_f_bits(unsigned index, std::uint64_t bits) { f_[index] = bits; }
  double f64(unsigned index) const;
  void set_f64(unsigned index, double value);

  std::uint64_t vl() const { return vl_; }
  std::uint64_t vtype() const { return vtype_; }
  /// Raw bytes of vector register `index` (vlenb() of them).
  const std::uint8_t* vreg_data(unsigned index) const {
    return v_.data() + static_cast<std::size_t>(index) * vlenb();
  }
  std::uint8_t* vreg_data(unsigned index) {
    return v_.data() + static_cast<std::size_t>(index) * vlenb();
  }

  std::uint64_t instret() const { return instret_; }
  /// Simulated-cycle count, provided by the orchestrator for the cycle CSR.
  void set_cycle(Cycle cycle) { cycle_ = cycle; }
  Cycle cycle_csr() const { return cycle_; }

  /// Console text accumulated through the write syscall / putchar HTIF.
  const std::string& console() const { return console_; }
  void clear_console() { console_.clear(); }
  void console_append(std::string_view text) { console_.append(text); }

  /// Attaches a host-side syscall emulator (src/loader's proxy kernel).
  /// While attached, `ecall` delegates to it instead of the built-in
  /// exit/write handling. nullptr detaches (the default).
  void set_syscall_emulator(SyscallEmulatorIf* emulator) {
    syscall_emulator_ = emulator;
  }
  SyscallEmulatorIf* syscall_emulator() const { return syscall_emulator_; }

  /// Address of the image's HTIF `tohost` word; stores to it are routed to
  /// the attached emulator. 0 (the default) disables the hook.
  void set_tohost_addr(Addr addr) { tohost_addr_ = addr; }
  Addr tohost_addr() const { return tohost_addr_; }

  SparseMemory& memory() { return *memory_; }

  /// Executes one decoded instruction (which must be the one at pc()).
  /// Updates pc and architectural state, records memory accesses in `info`.
  /// Throws ExecutionError for illegal/unsupported instructions.
  void execute(const isa::DecodedInst& inst, StepInfo& info);

  /// Current LMUL as an integer (1, 2, 4 or 8).
  unsigned lmul() const { return 1u << (vtype_ & 0x3); }
  /// Current SEW in bits (8, 16, 32 or 64).
  unsigned sew() const { return 8u << ((vtype_ >> 3) & 0x7); }

  /// True once the program wrote the roi_begin CSR (see csr::kRoiBegin).
  /// Only fast-forward mode inspects this; detailed mode ignores it.
  bool roi_marker() const { return roi_marker_; }
  void clear_roi_marker() { roi_marker_ = false; }

  /// Serializes the full architectural state (pc, x/f/v files, vl/vtype,
  /// fcsr/mstatus, instret, console, ROI marker). The LR/SC reservation
  /// lives in SparseMemory and is checkpointed there.
  void save_state(BinWriter& w) const;
  void load_state(BinReader& r);

 private:
  // Scalar helpers.
  std::uint64_t csr_read(std::uint32_t address) const;
  void csr_write(std::uint32_t address, std::uint64_t value);
  void do_syscall(StepInfo& info);
  template <typename T>
  T load(Addr addr, StepInfo& info) {
    info.accesses.push_back(
        MemAccess{addr, static_cast<std::uint8_t>(sizeof(T)), false});
    return memory_->read<T>(addr);
  }
  template <typename T>
  void store(Addr addr, T value, StepInfo& info) {
    info.accesses.push_back(
        MemAccess{addr, static_cast<std::uint8_t>(sizeof(T)), true});
    memory_->write<T>(addr, value);
    if (tohost_addr_ != 0 && addr == tohost_addr_) {
      note_tohost(static_cast<std::uint64_t>(value), info);
    }
  }
  void note_tohost(std::uint64_t value, StepInfo& info);

  // Vector engine (vexec.cpp).
  void exec_vector(const isa::DecodedInst& inst, StepInfo& info);
  void vset(const isa::DecodedInst& inst);
  std::uint64_t velem_get(unsigned vreg, unsigned element,
                          unsigned sew_bits) const;
  void velem_set(unsigned vreg, unsigned element, unsigned sew_bits,
                 std::uint64_t value);
  bool vmask_bit(unsigned element) const;
  void vmask_set(unsigned vreg, unsigned element, bool value);

  // RV64A helpers.
  void exec_amo(const isa::DecodedInst& inst, StepInfo& info);

  CoreId id_;
  SparseMemory* memory_;
  unsigned vlen_bits_;
  // LR/SC reservations live in SparseMemory (shared across harts) so
  // remote stores invalidate them; see SparseMemory::set_reservation.

  Addr pc_ = 0;
  std::uint64_t x_[32] = {};
  std::uint64_t f_[32] = {};
  std::vector<std::uint8_t> v_;  // 32 * vlenb bytes
  std::uint64_t vl_ = 0;
  std::uint64_t vtype_ = 0;
  std::uint64_t fcsr_ = 0;
  std::uint64_t mstatus_ = 0;
  std::uint64_t instret_ = 0;
  Cycle cycle_ = 0;
  std::string console_;
  bool roi_marker_ = false;
  /// Host-side pointers, re-attached (not serialized) on restore.
  SyscallEmulatorIf* syscall_emulator_ = nullptr;
  /// Serialized with the architectural state: the hook must survive a
  /// checkpoint for HTIF workloads to keep exiting after restore.
  Addr tohost_addr_ = 0;
};

}  // namespace coyote::iss
