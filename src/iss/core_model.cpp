#include "iss/core_model.h"

#include <algorithm>

#include "common/binio.h"
#include "common/error.h"

namespace coyote::iss {

CoreModel::CoreModel(CoreId id, SparseMemory* memory, const CoreConfig& config)
    : id_(id),
      config_(config),
      hart_(id, memory, config.vector),
      l1d_(memhier::CacheArray::Config{config.l1d_size_bytes, config.l1d_ways,
                                       config.line_bytes,
                                       config.l1_replacement}),
      l1i_(memhier::CacheArray::Config{config.l1i_size_bytes, config.l1i_ways,
                                       config.line_bytes,
                                       config.l1_replacement}) {
  if (config.dbb_cache) dbb_ = std::make_unique<DbbCache>(config.dbb_blocks);
}

void CoreModel::reset(Addr entry_pc) {
  hart_.reset(entry_pc);
  l1d_.invalidate_all();
  l1i_.invalidate_all();
  counters_ = CoreCounters{};
  std::fill(std::begin(pending_x_), std::end(pending_x_), 0);
  std::fill(std::begin(pending_f_), std::end(pending_f_), 0);
  std::fill(std::begin(pending_v_), std::end(pending_v_), 0);
  pending_total_ = 0;
  outstanding_.clear();
  waiting_ifetch_ = false;
  halted_ = false;
  flush_host_refs();
  if (dbb_ != nullptr) dbb_->flush();
}

const isa::DecodedInst& CoreModel::decode_ffwd(Addr pc) {
  if (dbb_ != nullptr) {
    // Same continuation + page-generation validation as step_one_dbb(): a
    // patched code page (guest store, host poke, fault flip) re-decodes.
    if (dbb_block_ == nullptr || dbb_index_ >= dbb_block_->ops.size() ||
        dbb_block_->ops[dbb_index_].pc != pc ||
        *dbb_block_->gen_ptr != dbb_block_->gen) {
      dbb_block_ = dbb_->acquire(pc, hart_.memory());
      dbb_index_ = 0;
    }
    return dbb_block_->ops[dbb_index_++].inst;
  }
  ffwd_inst_ = isa::decode(hart_.memory().read<std::uint32_t>(pc));
  return ffwd_inst_;
}

unsigned CoreModel::effective_group(const isa::RegRef& reg) const {
  // A vector register reference covers the whole LMUL group.
  return reg.file == isa::RegFile::kV ? hart_.lmul() : 1;
}

bool CoreModel::sources_pending(const isa::RegRef* srcs,
                                std::uint8_t num_srcs) const {
  for (std::uint8_t s = 0; s < num_srcs; ++s) {
    const isa::RegRef& reg = srcs[s];
    const unsigned group = effective_group(reg);
    for (unsigned i = 0; i < group; ++i) {
      const unsigned index = (reg.index + i) & 31;
      switch (reg.file) {
        case isa::RegFile::kX:
          if (pending_x_[index] != 0) return true;
          break;
        case isa::RegFile::kF:
          if (pending_f_[index] != 0) return true;
          break;
        case isa::RegFile::kV:
          if (pending_v_[index] != 0) return true;
          break;
      }
    }
  }
  return false;
}

void CoreModel::mark_pending(const isa::RegRef& reg, int delta) {
  const unsigned group = effective_group(reg);
  for (unsigned i = 0; i < group; ++i) {
    const unsigned index = (reg.index + i) & 31;
    std::uint16_t* slot = nullptr;
    switch (reg.file) {
      case isa::RegFile::kX: slot = &pending_x_[index]; break;
      case isa::RegFile::kF: slot = &pending_f_[index]; break;
      case isa::RegFile::kV: slot = &pending_v_[index]; break;
    }
    *slot = static_cast<std::uint16_t>(*slot + delta);
    pending_total_ = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(pending_total_) + delta);
  }
}

void CoreModel::step(CoreStepResult& out, Cycle cycle) {
  out.requests.clear();
  out.exited = false;
  out.exit_code = 0;
  out.status = dbb_ != nullptr ? step_one_dbb(out, cycle)
                               : step_one(out, cycle);
}

std::uint32_t CoreModel::step_block(CoreStepResult& out, Cycle first_cycle,
                                    std::uint32_t max_steps,
                                    bool advance_cycles) {
  out.requests.clear();
  out.exited = false;
  out.exit_code = 0;

  std::uint32_t retired = 0;
  Cycle cycle = first_cycle;
  const bool use_dbb = dbb_ != nullptr;
  for (;;) {
    out.status = use_dbb ? step_one_dbb(out, cycle) : step_one(out, cycle);
    if (out.status != StepStatus::kRetired) break;
    ++retired;
    if (out.exited || retired == max_steps) break;
    if (advance_cycles) {
      // Line requests must be routed while simulated time sits at the cycle
      // that produced them; hand control back to the caller.
      if (!out.requests.empty()) break;
      ++cycle;
    }
  }
  return retired;
}

StepStatus CoreModel::step_one(CoreStepResult& out, Cycle cycle) {
  if (halted_) {
    return StepStatus::kHalted;
  }
  if (waiting_ifetch_) {
    ++counters_.ifetch_stall_cycles;
    return StepStatus::kIFetchStall;
  }

  const Addr pc = hart_.pc();

  // ----- instruction fetch through the L1I -----
  if (config_.model_l1) {
    const Addr fetch_line = l1i_.line_of(pc);
    ++counters_.l1i_accesses;
    if (!l1i_.lookup(fetch_line)) {
      ++counters_.l1i_misses;
      ++counters_.ifetch_stall_cycles;
      waiting_ifetch_ = true;
      auto [slot, inserted] = outstanding_.get_or_add(fetch_line);
      slot->miss.ifetch = true;
      if (inserted) {
        out.requests.push_back(LineRequest{fetch_line, false, true, false});
      }
      return StepStatus::kIFetchStall;
    }
  }

  // ----- fetch + decode (done afresh every cycle: this is the reference
  // interpreter the decoded-block cache is measured against) -----
  const isa::DecodedInst inst =
      isa::decode(hart_.memory().read<std::uint32_t>(pc));
  const std::vector<isa::RegRef> srcs = isa::source_regs(inst);
  const std::vector<isa::RegRef> dsts = isa::dest_regs(inst);

  // ----- RAW-dependency check against in-flight fills -----
  if (sources_pending(srcs.data(), static_cast<std::uint8_t>(srcs.size()))) {
    ++counters_.raw_stall_cycles;
    return StepStatus::kRawStall;
  }

  // ----- functional execution -----
  hart_.set_cycle(cycle);
  step_info_.clear();
  hart_.execute(inst, step_info_);
  ++counters_.instructions;
  switch (classify_op(inst.op)) {
    case OpClass::kVector: ++counters_.vector_instructions; break;
    case OpClass::kBranch: ++counters_.branch_instructions; break;
    case OpClass::kFp: ++counters_.fp_instructions; break;
    case OpClass::kAmo: ++counters_.amo_instructions; break;
    case OpClass::kOther: break;
  }

  if (step_info_.exited) {
    halted_ = true;
    out.exited = true;
    out.exit_code = step_info_.exit_code;
  }

  // ----- play the data accesses against the L1D -----
  if (config_.model_l1) {
    for (const MemAccess& access : step_info_.accesses) {
      if (access.is_store) {
        ++counters_.stores;
      } else {
        ++counters_.loads;
      }
      // An access can straddle a line boundary; handle each touched line.
      Addr line = l1d_.line_of(access.addr);
      const Addr last_line = l1d_.line_of(access.addr + access.size - 1);
      for (; line <= last_line; line += config_.line_bytes) {
        ++counters_.l1d_accesses;
        if (l1d_.lookup(line)) {
          if (access.is_store) {
            if (config_.coherent) {
              const memhier::CohState state = l1d_.coh_state(line);
              if (state == memhier::CohState::kShared) {
                // Upgrade miss: the line stays readable but the store needs
                // Modified permission — emit a GetM and dirty on its fill.
                ++counters_.coh_upgrades;
                auto [slot, inserted] = outstanding_.get_or_add(line);
                slot->miss.data = true;
                slot->miss.dirty_on_fill = true;
                if (inserted) {
                  out.requests.push_back(LineRequest{line, true, false, false});
                }
                continue;
              }
              if (state == memhier::CohState::kExclusive) {
                // Silent E -> M upgrade; no traffic.
                l1d_.set_coh_state(line, memhier::CohState::kModified);
              }
            }
            l1d_.mark_dirty(line);
          }
          continue;
        }
        ++counters_.l1d_misses;
        auto [slot, inserted] = outstanding_.get_or_add(line);
        Outstanding& miss = slot->miss;
        miss.data = true;
        if (access.is_store) miss.dirty_on_fill = true;
        if (!access.is_store) {
          // The destination registers become available when this line (and
          // any other line feeding them) is filled.
          for (const isa::RegRef& d : dsts) {
            miss.dest_regs.push_back(d);
            mark_pending(d, +1);
          }
        }
        if (inserted) {
          out.requests.push_back(
              LineRequest{line, access.is_store, false, false});
        }
      }
    }
  } else {
    for (const MemAccess& access : step_info_.accesses) {
      if (access.is_store) {
        ++counters_.stores;
      } else {
        ++counters_.loads;
      }
    }
  }

  return StepStatus::kRetired;
}

StepStatus CoreModel::step_one_dbb(CoreStepResult& out, Cycle cycle) {
  // Mirror of step_one() dispatching pre-decoded micro-ops. Invariant: the
  // observable effects — counter bumps, LRU clock ticks, MSHR/request
  // traffic, stall classification, architectural state — are bit-identical
  // to step_one()'s for every input; only host work is elided. Any edit
  // here must keep the two paths in lockstep (the determinism suite
  // cross-checks them over every kernel).
  if (halted_) {
    return StepStatus::kHalted;
  }
  if (waiting_ifetch_) {
    ++counters_.ifetch_stall_cycles;
    return StepStatus::kIFetchStall;
  }

  const Addr pc = hart_.pc();

  // ----- instruction fetch through the L1I -----
  // Straight-line runs fetch the same line back to back; the held hit
  // handle turns the repeat lookup into one recency bump (identical array
  // state to a scanning lookup() hit).
  if (config_.model_l1) {
    const Addr fetch_line = l1i_.line_of(pc);
    ++counters_.l1i_accesses;
    if (fetch_line == hot_ifetch_line_) {
      l1i_.refresh(hot_ifetch_);
    } else {
      memhier::CacheArray::Entry* hit = l1i_.lookup_entry(fetch_line);
      if (hit == nullptr) {
        ++counters_.l1i_misses;
        ++counters_.ifetch_stall_cycles;
        waiting_ifetch_ = true;
        auto [slot, inserted] = outstanding_.get_or_add(fetch_line);
        slot->miss.ifetch = true;
        if (inserted) {
          out.requests.push_back(LineRequest{fetch_line, false, true, false});
        }
        return StepStatus::kIFetchStall;
      }
      hot_ifetch_ = hit;
      hot_ifetch_line_ = fetch_line;
    }
  }

  // ----- micro-op resolution from the decoded-block cache -----
  // Continuation fast path: still inside the current block and its code
  // page unwritten since decode. The per-op generation check is what makes
  // self-modifying code exact — a store this very block performed over its
  // own page forces the next dispatch back through acquire().
  const DbbMicroOp* op;
  if (dbb_block_ != nullptr && dbb_index_ < dbb_block_->ops.size() &&
      dbb_block_->ops[dbb_index_].pc == pc &&
      *dbb_block_->gen_ptr == dbb_block_->gen) {
    op = &dbb_block_->ops[dbb_index_];
  } else {
    dbb_block_ = dbb_->acquire(pc, hart_.memory());
    dbb_index_ = 0;
    op = &dbb_block_->ops[0];
  }

  // ----- RAW-dependency check against in-flight fills -----
  // pending_total_ == 0 (the overwhelmingly common case) skips the
  // per-source scan; sources_pending() is pure, so the shortcut cannot
  // change any observable state.
  if (pending_total_ != 0 && sources_pending(op->srcs, op->num_srcs)) {
    ++counters_.raw_stall_cycles;
    return StepStatus::kRawStall;
  }

  // ----- functional execution -----
  hart_.set_cycle(cycle);
  step_info_.clear();
  hart_.execute(op->inst, step_info_);
  ++counters_.instructions;
  switch (op->op_class) {
    case OpClass::kVector: ++counters_.vector_instructions; break;
    case OpClass::kBranch: ++counters_.branch_instructions; break;
    case OpClass::kFp: ++counters_.fp_instructions; break;
    case OpClass::kAmo: ++counters_.amo_instructions; break;
    case OpClass::kOther: break;
  }
  ++dbb_index_;

  if (step_info_.exited) {
    halted_ = true;
    out.exited = true;
    out.exit_code = step_info_.exit_code;
  }

  // ----- play the data accesses against the L1D -----
  if (config_.model_l1) {
    for (const MemAccess& access : step_info_.accesses) {
      if (access.is_store) {
        ++counters_.stores;
      } else {
        ++counters_.loads;
      }
      // An access can straddle a line boundary; handle each touched line.
      Addr line = l1d_.line_of(access.addr);
      const Addr last_line = l1d_.line_of(access.addr + access.size - 1);
      for (; line <= last_line; line += config_.line_bytes) {
        ++counters_.l1d_accesses;
        memhier::CacheArray::Entry* hit;
        if (line == hot_data_line_) {
          hit = hot_data_;
          l1d_.refresh(hit);
        } else {
          hit = l1d_.lookup_entry(line);
        }
        if (hit != nullptr) {
          hot_data_ = hit;
          hot_data_line_ = line;
          if (access.is_store) {
            if (config_.coherent) {
              const memhier::CohState state = hit->coh;
              if (state == memhier::CohState::kShared) {
                // Upgrade miss: the line stays readable but the store needs
                // Modified permission — emit a GetM and dirty on its fill.
                ++counters_.coh_upgrades;
                auto [slot, inserted] = outstanding_.get_or_add(line);
                slot->miss.data = true;
                slot->miss.dirty_on_fill = true;
                if (inserted) {
                  out.requests.push_back(LineRequest{line, true, false, false});
                }
                continue;
              }
              if (state == memhier::CohState::kExclusive) {
                // Silent E -> M upgrade; no traffic.
                hit->coh = memhier::CohState::kModified;
              }
            }
            l1d_.mark_dirty_entry(hit);
          }
          continue;
        }
        ++counters_.l1d_misses;
        auto [slot, inserted] = outstanding_.get_or_add(line);
        Outstanding& miss = slot->miss;
        miss.data = true;
        if (access.is_store) miss.dirty_on_fill = true;
        if (!access.is_store) {
          // The destination registers become available when this line (and
          // any other line feeding them) is filled.
          for (std::uint8_t d = 0; d < op->num_dsts; ++d) {
            miss.dest_regs.push_back(op->dsts[d]);
            mark_pending(op->dsts[d], +1);
          }
        }
        if (inserted) {
          out.requests.push_back(
              LineRequest{line, access.is_store, false, false});
        }
      }
    }
  } else {
    for (const MemAccess& access : step_info_.accesses) {
      if (access.is_store) {
        ++counters_.stores;
      } else {
        ++counters_.loads;
      }
    }
  }

  return StepStatus::kRetired;
}

void CoreModel::fill(Addr line_addr, memhier::CohGrant grant,
                     std::vector<LineRequest>& writebacks) {
  // Inserts (and the probes a fill can trigger) may move tag-array entries.
  drop_hot_refs();
  MshrTable::Slot* slot = outstanding_.find(line_addr);
  if (slot == nullptr) {
    throw SimError(strfmt("core %u: fill of line 0x%llx with no MSHR", id_,
                          static_cast<unsigned long long>(line_addr)));
  }
  for (const isa::RegRef& reg : slot->miss.dest_regs) mark_pending(reg, -1);
  // Snapshot, then recycle the slot before the Shared-grant path below
  // re-allocates one for the same line (the old try_emplace-after-erase).
  struct {
    bool ifetch, data, dirty_on_fill;
    std::uint8_t deferred_probe;
  } const miss{slot->miss.ifetch, slot->miss.data, slot->miss.dirty_on_fill,
               slot->miss.deferred_probe};
  outstanding_.release(slot);

  if (miss.ifetch) {
    const auto evicted = l1i_.insert(line_addr, /*dirty=*/false);
    (void)evicted;  // instruction lines are never dirty
    waiting_ifetch_ = false;
  }
  if (!miss.data) return;

  if (!config_.coherent) {
    insert_l1d(line_addr, miss.dirty_on_fill, memhier::CohState::kInvalid,
               writebacks);
    return;
  }

  using memhier::CohGrant;
  using memhier::CohState;
  switch (grant) {
    case CohGrant::kModified:
      if (l1d_.probe(line_addr)) {
        // Upgrade fill: the Shared copy (if a probe did not race it away)
        // becomes Modified and takes the store's dirtiness now.
        l1d_.set_coh_state(line_addr, CohState::kModified);
        if (miss.dirty_on_fill) l1d_.mark_dirty(line_addr);
      } else {
        insert_l1d(line_addr, miss.dirty_on_fill, CohState::kModified,
                   writebacks);
      }
      break;
    case CohGrant::kExclusive:
      // A store merged into the read miss upgrades silently (E -> M).
      insert_l1d(line_addr, miss.dirty_on_fill,
                 miss.dirty_on_fill ? CohState::kModified
                                    : CohState::kExclusive,
                 writebacks);
      break;
    case CohGrant::kShared:
      insert_l1d(line_addr, /*dirty=*/false, CohState::kShared, writebacks);
      if (miss.dirty_on_fill) {
        // A store merged into the read miss but only Shared was granted:
        // re-issue the write as an upgrade request.
        ++counters_.coh_upgrades;
        Outstanding& upgrade = outstanding_.get_or_add(line_addr).first->miss;
        upgrade.data = true;
        upgrade.dirty_on_fill = true;
        writebacks.push_back(LineRequest{line_addr, true, false, false});
      }
      break;
    case CohGrant::kNone:
      // Non-coherent response in coherent mode (ifetch-only fills handled
      // above); treat as an uncoherent data fill.
      insert_l1d(line_addr, miss.dirty_on_fill, CohState::kInvalid,
                 writebacks);
      break;
  }
  if (miss.deferred_probe != 0) {
    // The directory granted a later same-line transaction while our fill
    // was in flight and its probe beat the data here. Coherence order puts
    // that transaction after ours, so the line is demoted/invalidated the
    // moment it lands.
    coherence_probe(line_addr, miss.deferred_probe == 1);
  }
}

void CoreModel::insert_l1d(Addr line_addr, bool dirty, memhier::CohState state,
                           std::vector<LineRequest>& writebacks) {
  const auto evicted = l1d_.insert(line_addr, dirty, state);
  if (evicted.valid && evicted.dirty) {
    ++counters_.writebacks;
    writebacks.push_back(
        LineRequest{evicted.line_addr, true, false, /*is_writeback=*/true});
  }
}

const StepInfo* CoreModel::ffwd_step(Cycle cycle) {
  if (halted_) return nullptr;
  const isa::DecodedInst& inst = decode_ffwd(hart_.pc());
  hart_.set_cycle(cycle);
  step_info_.clear();
  hart_.execute(inst, step_info_);
  if (step_info_.exited) halted_ = true;
  return &step_info_;
}

std::uint64_t CoreModel::ffwd_run(std::uint64_t n, Cycle cycle,
                                  bool stop_at_roi) {
  if (halted_) return 0;
  hart_.set_cycle(cycle);
  std::uint64_t done = 0;
  while (done < n) {
    const isa::DecodedInst& inst = decode_ffwd(hart_.pc());
    step_info_.clear();
    hart_.execute(inst, step_info_);
    ++done;
    if (step_info_.exited) {
      halted_ = true;
      break;
    }
    if (stop_at_roi && hart_.roi_marker()) break;
  }
  return done;
}

namespace {

void save_counters(BinWriter& w, const CoreCounters& c) {
  w.u64(c.instructions);
  w.u64(c.loads);
  w.u64(c.stores);
  w.u64(c.l1d_accesses);
  w.u64(c.l1d_misses);
  w.u64(c.l1i_accesses);
  w.u64(c.l1i_misses);
  w.u64(c.raw_stall_cycles);
  w.u64(c.ifetch_stall_cycles);
  w.u64(c.writebacks);
  w.u64(c.vector_instructions);
  w.u64(c.branch_instructions);
  w.u64(c.fp_instructions);
  w.u64(c.amo_instructions);
  w.u64(c.coh_upgrades);
  w.u64(c.coh_invalidations);
  w.u64(c.coh_downgrades);
}

void load_counters(BinReader& r, CoreCounters& c) {
  c.instructions = r.u64();
  c.loads = r.u64();
  c.stores = r.u64();
  c.l1d_accesses = r.u64();
  c.l1d_misses = r.u64();
  c.l1i_accesses = r.u64();
  c.l1i_misses = r.u64();
  c.raw_stall_cycles = r.u64();
  c.ifetch_stall_cycles = r.u64();
  c.writebacks = r.u64();
  c.vector_instructions = r.u64();
  c.branch_instructions = r.u64();
  c.fp_instructions = r.u64();
  c.amo_instructions = r.u64();
  c.coh_upgrades = r.u64();
  c.coh_invalidations = r.u64();
  c.coh_downgrades = r.u64();
}

}  // namespace

void CoreModel::save_state(BinWriter& w) const {
  if (outstanding_.live_count() != 0 || waiting_ifetch_) {
    throw SimError(strfmt("core %u: checkpoint with %zu misses in flight — "
                          "checkpoints are only legal at quiesce points",
                          id_, outstanding_.live_count()));
  }
  hart_.save_state(w);
  l1d_.save_state(w);
  l1i_.save_state(w);
  save_counters(w, counters_);
  w.b(halted_);
}

void CoreModel::load_state(BinReader& r) {
  hart_.load_state(r);
  l1d_.load_state(r);
  l1i_.load_state(r);
  load_counters(r, counters_);
  halted_ = r.b();
  // Quiesce invariant: nothing in flight at the checkpoint, so the miss /
  // RAW bookkeeping restores to empty.
  outstanding_.clear();
  waiting_ifetch_ = false;
  std::fill(std::begin(pending_x_), std::end(pending_x_), 0);
  std::fill(std::begin(pending_f_), std::end(pending_f_), 0);
  std::fill(std::begin(pending_v_), std::end(pending_v_), 0);
  pending_total_ = 0;
  // Decoded blocks and L1 hit handles are host state over the pre-restore
  // memory image and tag arrays: rebuild both cold.
  flush_host_refs();
  if (dbb_ != nullptr) dbb_->flush();
}

bool CoreModel::coherence_probe(Addr line_addr, bool to_shared) {
  // A probe can only be in flight to us while we have a data transaction
  // outstanding on the same line if the directory serialized the probing
  // transaction *after* ours — our grant is still travelling and the probe
  // took a shorter path (probes skip the L2 access latency). Defer it to
  // our fill; an invalidation subsumes a downgrade. This covers both a
  // plain miss in flight (line absent) and an upgrade in flight (line
  // still resident in Shared).
  MshrTable::Slot* slot = outstanding_.find(line_addr);
  if (slot != nullptr && slot->miss.data) {
    slot->miss.deferred_probe = std::max<std::uint8_t>(
        slot->miss.deferred_probe, to_shared ? std::uint8_t{1}
                                             : std::uint8_t{2});
    return false;
  }
  // Truly absent (silently evicted) lines ack as a miss.
  if (!l1d_.probe(line_addr)) return false;
  // The probe is about to change (or clear) a resident entry out from under
  // any held hit handle.
  drop_hot_refs();
  if (to_shared) {
    ++counters_.coh_downgrades;
    return l1d_.downgrade(line_addr);
  }
  ++counters_.coh_invalidations;
  return l1d_.invalidate(line_addr);
}

}  // namespace coyote::iss
