#include "iss/core_model.h"

#include <algorithm>

#include "common/binio.h"
#include "common/error.h"

namespace coyote::iss {

CoreModel::CoreModel(CoreId id, SparseMemory* memory, const CoreConfig& config)
    : id_(id),
      config_(config),
      hart_(id, memory, config.vector),
      l1d_(memhier::CacheArray::Config{config.l1d_size_bytes, config.l1d_ways,
                                       config.line_bytes,
                                       config.l1_replacement}),
      l1i_(memhier::CacheArray::Config{config.l1i_size_bytes, config.l1i_ways,
                                       config.line_bytes,
                                       config.l1_replacement}),
      decode_cache_(kDecodeCacheSize) {}

void CoreModel::reset(Addr entry_pc) {
  hart_.reset(entry_pc);
  l1d_.invalidate_all();
  l1i_.invalidate_all();
  for (auto& entry : decode_cache_) entry.pc = ~Addr{0};
  counters_ = CoreCounters{};
  std::fill(std::begin(pending_x_), std::end(pending_x_), 0);
  std::fill(std::begin(pending_f_), std::end(pending_f_), 0);
  std::fill(std::begin(pending_v_), std::end(pending_v_), 0);
  outstanding_.clear();
  waiting_ifetch_ = false;
  halted_ = false;
}

const CoreModel::DecodeEntry& CoreModel::decode_at(Addr pc) {
  DecodeEntry& entry = decode_cache_[(pc >> 2) & (kDecodeCacheSize - 1)];
  if (entry.pc != pc) {
    entry.pc = pc;
    entry.inst = isa::decode(hart_.memory().read<std::uint32_t>(pc));
    const auto srcs = isa::source_regs(entry.inst);
    const auto dsts = isa::dest_regs(entry.inst);
    if (srcs.size() > std::size(entry.srcs) ||
        dsts.size() > std::size(entry.dsts)) {
      throw SimError(strfmt("decode cache: operand list overflow for '%s'",
                            isa::op_name(entry.inst.op)));
    }
    entry.num_srcs = static_cast<std::uint8_t>(srcs.size());
    entry.num_dsts = static_cast<std::uint8_t>(dsts.size());
    std::copy(srcs.begin(), srcs.end(), entry.srcs);
    std::copy(dsts.begin(), dsts.end(), entry.dsts);
    if (isa::is_vector(entry.inst.op)) {
      entry.op_class = OpClass::kVector;
    } else if (isa::is_branch_or_jump(entry.inst.op)) {
      entry.op_class = OpClass::kBranch;
    } else if (isa::is_fp(entry.inst.op)) {
      entry.op_class = OpClass::kFp;
    } else if (isa::is_amo(entry.inst.op)) {
      entry.op_class = OpClass::kAmo;
    } else {
      entry.op_class = OpClass::kOther;
    }
  }
  return entry;
}

unsigned CoreModel::effective_group(const isa::RegRef& reg) const {
  // A vector register reference covers the whole LMUL group.
  return reg.file == isa::RegFile::kV ? hart_.lmul() : 1;
}

bool CoreModel::sources_pending(const DecodeEntry& entry) const {
  for (std::uint8_t s = 0; s < entry.num_srcs; ++s) {
    const isa::RegRef& reg = entry.srcs[s];
    const unsigned group = effective_group(reg);
    for (unsigned i = 0; i < group; ++i) {
      const unsigned index = (reg.index + i) & 31;
      switch (reg.file) {
        case isa::RegFile::kX:
          if (pending_x_[index] != 0) return true;
          break;
        case isa::RegFile::kF:
          if (pending_f_[index] != 0) return true;
          break;
        case isa::RegFile::kV:
          if (pending_v_[index] != 0) return true;
          break;
      }
    }
  }
  return false;
}

void CoreModel::mark_pending(const isa::RegRef& reg, int delta) {
  const unsigned group = effective_group(reg);
  for (unsigned i = 0; i < group; ++i) {
    const unsigned index = (reg.index + i) & 31;
    std::uint16_t* slot = nullptr;
    switch (reg.file) {
      case isa::RegFile::kX: slot = &pending_x_[index]; break;
      case isa::RegFile::kF: slot = &pending_f_[index]; break;
      case isa::RegFile::kV: slot = &pending_v_[index]; break;
    }
    *slot = static_cast<std::uint16_t>(*slot + delta);
  }
}

void CoreModel::step(CoreStepResult& out, Cycle cycle) {
  out.requests.clear();
  out.exited = false;
  out.exit_code = 0;
  out.status = step_one(out, cycle);
}

std::uint32_t CoreModel::step_block(CoreStepResult& out, Cycle first_cycle,
                                    std::uint32_t max_steps,
                                    bool advance_cycles) {
  out.requests.clear();
  out.exited = false;
  out.exit_code = 0;

  std::uint32_t retired = 0;
  Cycle cycle = first_cycle;
  for (;;) {
    out.status = step_one(out, cycle);
    if (out.status != StepStatus::kRetired) break;
    ++retired;
    if (out.exited || retired == max_steps) break;
    if (advance_cycles) {
      // Line requests must be routed while simulated time sits at the cycle
      // that produced them; hand control back to the caller.
      if (!out.requests.empty()) break;
      ++cycle;
    }
  }
  return retired;
}

StepStatus CoreModel::step_one(CoreStepResult& out, Cycle cycle) {
  if (halted_) {
    return StepStatus::kHalted;
  }
  if (waiting_ifetch_) {
    ++counters_.ifetch_stall_cycles;
    return StepStatus::kIFetchStall;
  }

  const Addr pc = hart_.pc();

  // ----- instruction fetch through the L1I -----
  if (config_.model_l1) {
    const Addr fetch_line = l1i_.line_of(pc);
    ++counters_.l1i_accesses;
    if (!l1i_.lookup(fetch_line)) {
      ++counters_.l1i_misses;
      ++counters_.ifetch_stall_cycles;
      waiting_ifetch_ = true;
      auto [it, inserted] = outstanding_.try_emplace(fetch_line);
      it->second.ifetch = true;
      if (inserted) {
        out.requests.push_back(LineRequest{fetch_line, false, true, false});
      }
      return StepStatus::kIFetchStall;
    }
  }

  // ----- RAW-dependency check against in-flight fills -----
  const DecodeEntry& entry = decode_at(pc);
  if (sources_pending(entry)) {
    ++counters_.raw_stall_cycles;
    return StepStatus::kRawStall;
  }

  // ----- functional execution -----
  hart_.set_cycle(cycle);
  step_info_.clear();
  hart_.execute(entry.inst, step_info_);
  ++counters_.instructions;
  switch (entry.op_class) {
    case OpClass::kVector: ++counters_.vector_instructions; break;
    case OpClass::kBranch: ++counters_.branch_instructions; break;
    case OpClass::kFp: ++counters_.fp_instructions; break;
    case OpClass::kAmo: ++counters_.amo_instructions; break;
    case OpClass::kOther: break;
  }

  if (step_info_.exited) {
    halted_ = true;
    out.exited = true;
    out.exit_code = step_info_.exit_code;
  }

  // ----- play the data accesses against the L1D -----
  if (config_.model_l1) {
    for (const MemAccess& access : step_info_.accesses) {
      if (access.is_store) {
        ++counters_.stores;
      } else {
        ++counters_.loads;
      }
      // An access can straddle a line boundary; handle each touched line.
      Addr line = l1d_.line_of(access.addr);
      const Addr last_line = l1d_.line_of(access.addr + access.size - 1);
      for (; line <= last_line; line += config_.line_bytes) {
        ++counters_.l1d_accesses;
        if (l1d_.lookup(line)) {
          if (access.is_store) {
            if (config_.coherent) {
              const memhier::CohState state = l1d_.coh_state(line);
              if (state == memhier::CohState::kShared) {
                // Upgrade miss: the line stays readable but the store needs
                // Modified permission — emit a GetM and dirty on its fill.
                ++counters_.coh_upgrades;
                auto [it, inserted] = outstanding_.try_emplace(line);
                it->second.data = true;
                it->second.dirty_on_fill = true;
                if (inserted) {
                  out.requests.push_back(LineRequest{line, true, false, false});
                }
                continue;
              }
              if (state == memhier::CohState::kExclusive) {
                // Silent E -> M upgrade; no traffic.
                l1d_.set_coh_state(line, memhier::CohState::kModified);
              }
            }
            l1d_.mark_dirty(line);
          }
          continue;
        }
        ++counters_.l1d_misses;
        auto [it, inserted] = outstanding_.try_emplace(line);
        Outstanding& miss = it->second;
        miss.data = true;
        if (access.is_store) miss.dirty_on_fill = true;
        if (!access.is_store) {
          // The destination registers become available when this line (and
          // any other line feeding them) is filled.
          for (std::uint8_t d = 0; d < entry.num_dsts; ++d) {
            miss.dest_regs.push_back(entry.dsts[d]);
            mark_pending(entry.dsts[d], +1);
          }
        }
        if (inserted) {
          out.requests.push_back(
              LineRequest{line, access.is_store, false, false});
        }
      }
    }
  } else {
    for (const MemAccess& access : step_info_.accesses) {
      if (access.is_store) {
        ++counters_.stores;
      } else {
        ++counters_.loads;
      }
    }
  }

  return StepStatus::kRetired;
}

void CoreModel::fill(Addr line_addr, memhier::CohGrant grant,
                     std::vector<LineRequest>& writebacks) {
  const auto it = outstanding_.find(line_addr);
  if (it == outstanding_.end()) {
    throw SimError(strfmt("core %u: fill of line 0x%llx with no MSHR", id_,
                          static_cast<unsigned long long>(line_addr)));
  }
  const Outstanding miss = std::move(it->second);
  outstanding_.erase(it);

  for (const isa::RegRef& reg : miss.dest_regs) mark_pending(reg, -1);

  if (miss.ifetch) {
    const auto evicted = l1i_.insert(line_addr, /*dirty=*/false);
    (void)evicted;  // instruction lines are never dirty
    waiting_ifetch_ = false;
  }
  if (!miss.data) return;

  if (!config_.coherent) {
    insert_l1d(line_addr, miss.dirty_on_fill, memhier::CohState::kInvalid,
               writebacks);
    return;
  }

  using memhier::CohGrant;
  using memhier::CohState;
  switch (grant) {
    case CohGrant::kModified:
      if (l1d_.probe(line_addr)) {
        // Upgrade fill: the Shared copy (if a probe did not race it away)
        // becomes Modified and takes the store's dirtiness now.
        l1d_.set_coh_state(line_addr, CohState::kModified);
        if (miss.dirty_on_fill) l1d_.mark_dirty(line_addr);
      } else {
        insert_l1d(line_addr, miss.dirty_on_fill, CohState::kModified,
                   writebacks);
      }
      break;
    case CohGrant::kExclusive:
      // A store merged into the read miss upgrades silently (E -> M).
      insert_l1d(line_addr, miss.dirty_on_fill,
                 miss.dirty_on_fill ? CohState::kModified
                                    : CohState::kExclusive,
                 writebacks);
      break;
    case CohGrant::kShared:
      insert_l1d(line_addr, /*dirty=*/false, CohState::kShared, writebacks);
      if (miss.dirty_on_fill) {
        // A store merged into the read miss but only Shared was granted:
        // re-issue the write as an upgrade request.
        ++counters_.coh_upgrades;
        Outstanding& upgrade = outstanding_[line_addr];
        upgrade.data = true;
        upgrade.dirty_on_fill = true;
        writebacks.push_back(LineRequest{line_addr, true, false, false});
      }
      break;
    case CohGrant::kNone:
      // Non-coherent response in coherent mode (ifetch-only fills handled
      // above); treat as an uncoherent data fill.
      insert_l1d(line_addr, miss.dirty_on_fill, CohState::kInvalid,
                 writebacks);
      break;
  }
  if (miss.deferred_probe != 0) {
    // The directory granted a later same-line transaction while our fill
    // was in flight and its probe beat the data here. Coherence order puts
    // that transaction after ours, so the line is demoted/invalidated the
    // moment it lands.
    coherence_probe(line_addr, miss.deferred_probe == 1);
  }
}

void CoreModel::insert_l1d(Addr line_addr, bool dirty, memhier::CohState state,
                           std::vector<LineRequest>& writebacks) {
  const auto evicted = l1d_.insert(line_addr, dirty, state);
  if (evicted.valid && evicted.dirty) {
    ++counters_.writebacks;
    writebacks.push_back(
        LineRequest{evicted.line_addr, true, false, /*is_writeback=*/true});
  }
}

const StepInfo* CoreModel::ffwd_step(Cycle cycle) {
  if (halted_) return nullptr;
  const DecodeEntry& entry = decode_at(hart_.pc());
  hart_.set_cycle(cycle);
  step_info_.clear();
  hart_.execute(entry.inst, step_info_);
  if (step_info_.exited) halted_ = true;
  return &step_info_;
}

std::uint64_t CoreModel::ffwd_run(std::uint64_t n, Cycle cycle,
                                  bool stop_at_roi) {
  if (halted_) return 0;
  hart_.set_cycle(cycle);
  std::uint64_t done = 0;
  while (done < n) {
    const DecodeEntry& entry = decode_at(hart_.pc());
    step_info_.clear();
    hart_.execute(entry.inst, step_info_);
    ++done;
    if (step_info_.exited) {
      halted_ = true;
      break;
    }
    if (stop_at_roi && hart_.roi_marker()) break;
  }
  return done;
}

namespace {

void save_counters(BinWriter& w, const CoreCounters& c) {
  w.u64(c.instructions);
  w.u64(c.loads);
  w.u64(c.stores);
  w.u64(c.l1d_accesses);
  w.u64(c.l1d_misses);
  w.u64(c.l1i_accesses);
  w.u64(c.l1i_misses);
  w.u64(c.raw_stall_cycles);
  w.u64(c.ifetch_stall_cycles);
  w.u64(c.writebacks);
  w.u64(c.vector_instructions);
  w.u64(c.branch_instructions);
  w.u64(c.fp_instructions);
  w.u64(c.amo_instructions);
  w.u64(c.coh_upgrades);
  w.u64(c.coh_invalidations);
  w.u64(c.coh_downgrades);
}

void load_counters(BinReader& r, CoreCounters& c) {
  c.instructions = r.u64();
  c.loads = r.u64();
  c.stores = r.u64();
  c.l1d_accesses = r.u64();
  c.l1d_misses = r.u64();
  c.l1i_accesses = r.u64();
  c.l1i_misses = r.u64();
  c.raw_stall_cycles = r.u64();
  c.ifetch_stall_cycles = r.u64();
  c.writebacks = r.u64();
  c.vector_instructions = r.u64();
  c.branch_instructions = r.u64();
  c.fp_instructions = r.u64();
  c.amo_instructions = r.u64();
  c.coh_upgrades = r.u64();
  c.coh_invalidations = r.u64();
  c.coh_downgrades = r.u64();
}

}  // namespace

void CoreModel::save_state(BinWriter& w) const {
  if (!outstanding_.empty() || waiting_ifetch_) {
    throw SimError(strfmt("core %u: checkpoint with %zu misses in flight — "
                          "checkpoints are only legal at quiesce points",
                          id_, outstanding_.size()));
  }
  hart_.save_state(w);
  l1d_.save_state(w);
  l1i_.save_state(w);
  save_counters(w, counters_);
  w.b(halted_);
}

void CoreModel::load_state(BinReader& r) {
  hart_.load_state(r);
  l1d_.load_state(r);
  l1i_.load_state(r);
  load_counters(r, counters_);
  halted_ = r.b();
  // Quiesce invariant: nothing in flight at the checkpoint, so the miss /
  // RAW bookkeeping restores to empty. The decode cache is a pure function
  // of memory; invalidate it and let it refill.
  outstanding_.clear();
  waiting_ifetch_ = false;
  std::fill(std::begin(pending_x_), std::end(pending_x_), 0);
  std::fill(std::begin(pending_f_), std::end(pending_f_), 0);
  std::fill(std::begin(pending_v_), std::end(pending_v_), 0);
  for (auto& entry : decode_cache_) entry.pc = ~Addr{0};
}

bool CoreModel::coherence_probe(Addr line_addr, bool to_shared) {
  // A probe can only be in flight to us while we have a data transaction
  // outstanding on the same line if the directory serialized the probing
  // transaction *after* ours — our grant is still travelling and the probe
  // took a shorter path (probes skip the L2 access latency). Defer it to
  // our fill; an invalidation subsumes a downgrade. This covers both a
  // plain miss in flight (line absent) and an upgrade in flight (line
  // still resident in Shared).
  const auto it = outstanding_.find(line_addr);
  if (it != outstanding_.end() && it->second.data) {
    it->second.deferred_probe = std::max<std::uint8_t>(
        it->second.deferred_probe, to_shared ? std::uint8_t{1}
                                             : std::uint8_t{2});
    return false;
  }
  // Truly absent (silently evicted) lines ack as a miss.
  if (!l1d_.probe(line_addr)) return false;
  if (to_shared) {
    ++counters_.coh_downgrades;
    return l1d_.downgrade(line_addr);
  }
  ++counters_.coh_invalidations;
  return l1d_.invalidate(line_addr);
}

}  // namespace coyote::iss
