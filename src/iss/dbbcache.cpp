#include "iss/dbbcache.h"

#include <algorithm>

#include "common/error.h"
#include "isa/decoder.h"

namespace coyote::iss {

OpClass classify_op(isa::Op op) {
  if (isa::is_vector(op)) return OpClass::kVector;
  if (isa::is_branch_or_jump(op)) return OpClass::kBranch;
  if (isa::is_fp(op)) return OpClass::kFp;
  if (isa::is_amo(op)) return OpClass::kAmo;
  return OpClass::kOther;
}

DbbCache::DbbCache(std::uint64_t max_blocks)
    : max_blocks_(std::max<std::uint64_t>(max_blocks, 1)) {}

const DbbBlock* DbbCache::acquire(Addr pc, const SparseMemory& memory) {
  const auto it = blocks_.find(pc);
  if (it != blocks_.end()) {
    DbbBlock& block = it->second;
    if (*block.gen_ptr == block.gen) {
      ++stats_.hits;
      block.stamp = ++stamp_;
      return &block;
    }
    // The code page was written since this block was decoded (guest store,
    // host poke or fault flip): drop it and re-decode the current bytes.
    ++stats_.invalidations;
    blocks_.erase(it);
  }
  ++stats_.misses;
  return build(pc, memory);
}

void DbbCache::flush() {
  blocks_.clear();
  // stats_ deliberately survives a flush: flushes happen at program load and
  // checkpoint restore, and the counters describe the whole process run.
}

DbbBlock* DbbCache::build(Addr pc, const SparseMemory& memory) {
  if (blocks_.size() >= max_blocks_) {
    // Evict the least-recently-acquired block. Stamps are unique, so the
    // victim is deterministic regardless of hash iteration order — not that
    // it could matter: eviction only costs a future re-decode, it has no
    // simulated-side effect.
    auto victim = blocks_.begin();
    for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
      if (it->second.stamp < victim->second.stamp) victim = it;
    }
    blocks_.erase(victim);
  }

  DbbBlock& block = blocks_[pc];
  block.start_pc = pc;
  block.stamp = ++stamp_;
  const Addr page_index = pc >> SparseMemory::kPageBits;
  block.gen_ptr = memory.page_write_gen_ptr(page_index);
  if (block.gen_ptr == nullptr) {
    // Executing a never-written page: its bytes read as zero, which decodes
    // to an illegal instruction — build the one-op block from the shared
    // zero generation. Any later write allocates the page (generation 1),
    // and the mismatch against 0 retires the block as usual.
    static const std::uint64_t kZeroGen = 0;
    block.gen_ptr = &kZeroGen;
    block.gen = 0;
  } else {
    block.gen = *block.gen_ptr;
  }
  block.ops.reserve(8);

  const Addr page_end = (page_index + 1) << SparseMemory::kPageBits;
  Addr cursor = pc;
  while (block.ops.size() < kMaxOps && cursor < page_end) {
    DbbMicroOp op;
    op.pc = cursor;
    op.inst = isa::decode(memory.read<std::uint32_t>(cursor));
    const auto srcs = isa::source_regs(op.inst);
    const auto dsts = isa::dest_regs(op.inst);
    if (srcs.size() > std::size(op.srcs) || dsts.size() > std::size(op.dsts)) {
      throw SimError(strfmt("dbb cache: operand list overflow for '%s'",
                            isa::op_name(op.inst.op)));
    }
    op.num_srcs = static_cast<std::uint8_t>(srcs.size());
    op.num_dsts = static_cast<std::uint8_t>(dsts.size());
    std::copy(srcs.begin(), srcs.end(), op.srcs);
    std::copy(dsts.begin(), dsts.end(), op.dsts);
    op.op_class = classify_op(op.inst.op);
    block.ops.push_back(op);
    // Control transfers and environment calls end the straight-line run
    // (the terminating op itself is part of the block). An undecodable word
    // also ends it: execution throws there, so nothing beyond is reachable.
    if (op.op_class == OpClass::kBranch || op.inst.op == isa::Op::kEcall ||
        op.inst.op == isa::Op::kEbreak ||
        op.inst.op == isa::Op::kIllegal) {
      break;
    }
    cursor += 4;
  }
  return &block;
}

}  // namespace coyote::iss
