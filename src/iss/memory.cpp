#include "iss/memory.h"

namespace coyote::iss {

const SparseMemory::Page SparseMemory::zero_page_ = {};

}  // namespace coyote::iss
