// Decoded basic-block cache (the riscv-vp++ "dbbcache" idea): the first
// execution of a straight-line run of instructions decodes it once into a
// block of pre-decoded micro-ops — operand registers resolved, immediates
// extracted, instruction-mix class assigned — and every later visit
// dispatches from the block, skipping fetch-path decode work entirely.
//
// Blocks are pure host-side state derived from guest memory: they are never
// serialized into checkpoints (a restored run rebuilds them cold), carry no
// timing, and have zero effect on simulated results. Staleness is detected
// with the page-granular write generations SparseMemory maintains: a block
// records the generation of the (single) code page it decoded from, and any
// mismatch — a guest store over the code, a host poke, a fault-injection
// bit flip — retires the block so the next visit re-decodes the current
// bytes. The common data-store path therefore stays O(1): stores bump a
// counter they already own; no block lookup happens on the store side.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "isa/inst.h"
#include "iss/memory.h"

namespace coyote::iss {

/// Instruction-class buckets for the per-retire mix counters, resolved once
/// at decode time instead of via predicate chains on every retire.
enum class OpClass : std::uint8_t { kOther, kVector, kBranch, kFp, kAmo };

/// Classifies `op` into its retire-mix bucket.
OpClass classify_op(isa::Op op);

/// One pre-decoded micro-op of a block.
struct DbbMicroOp {
  isa::DecodedInst inst;
  Addr pc = 0;
  std::uint8_t num_srcs = 0;
  std::uint8_t num_dsts = 0;
  OpClass op_class = OpClass::kOther;
  isa::RegRef srcs[5];  ///< max: masked indexed vector store (4) + slack
  isa::RegRef dsts[2];  ///< every supported shape writes at most 1
};

/// One decoded basic block: a straight-line run starting at `start_pc`,
/// ending at the first branch/jump or environment call (included), at the
/// code page's edge, or at the op-count cap. All ops live on one guest
/// page, so a single write-generation pair validates the whole block.
struct DbbBlock {
  Addr start_pc = 0;
  /// Write generation of the code page when the block was decoded, and a
  /// stable pointer to the live counter (SparseMemory's page table is
  /// node-based and pages are never individually dropped, so the pointer
  /// outlives the block short of a checkpoint restore — which flushes the
  /// whole cache).
  std::uint64_t gen = 0;
  const std::uint64_t* gen_ptr = nullptr;
  std::uint64_t stamp = 0;  ///< last-acquired tick, drives eviction
  std::vector<DbbMicroOp> ops;
};

/// Host-visibility counters (surfaced to the statistics tree when the
/// cache is enabled; deliberately not part of the serialized CoreCounters
/// so the checkpoint byte stream is identical with the cache on or off).
struct DbbStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
};

class DbbCache {
 public:
  /// `max_blocks` bounds the cache (>= 1); the least-recently-acquired
  /// block is evicted when a build would exceed it.
  explicit DbbCache(std::uint64_t max_blocks);

  /// The block starting at `pc`, decoding it from `memory` on a miss.
  /// Validates the page generation first: a stale block is dropped
  /// (counted as an invalidation) and rebuilt from the current bytes.
  /// The returned pointer stays valid until the next acquire()/flush().
  const DbbBlock* acquire(Addr pc, const SparseMemory& memory);

  /// Drops every block (checkpoint restore, program load).
  void flush();

  const DbbStats& stats() const { return stats_; }
  std::size_t size() const { return blocks_.size(); }

  /// Maximum instructions decoded into one block.
  static constexpr std::size_t kMaxOps = 64;

 private:
  DbbBlock* build(Addr pc, const SparseMemory& memory);

  std::unordered_map<Addr, DbbBlock> blocks_;
  std::uint64_t max_blocks_;
  std::uint64_t stamp_ = 0;
  DbbStats stats_;
};

}  // namespace coyote::iss
