// CoreModel: one simulated core as the Orchestrator sees it — the functional
// hart plus the L1 instruction/data cache models and the miss / RAW-
// dependency bookkeeping. This is the "minimally modified Spike" of the
// paper: it can attempt one instruction per cycle and reports
//   * retired instructions together with any new L1 line misses, and
//   * stalls, either on a RAW dependency against an in-flight load or on an
//     instruction-fetch miss.
// The memory hierarchy answers misses through fill().
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <memory>

#include "common/types.h"
#include "isa/decoder.h"
#include "iss/dbbcache.h"
#include "iss/hart.h"
#include "memhier/cache_array.h"
#include "memhier/msg.h"

namespace coyote {
class BinWriter;
class BinReader;
}  // namespace coyote

namespace coyote::iss {

/// Build-time configuration of one core.
struct CoreConfig {
  VectorConfig vector;
  std::uint64_t l1d_size_bytes = 32 * 1024;
  std::uint32_t l1d_ways = 8;
  std::uint64_t l1i_size_bytes = 32 * 1024;
  std::uint32_t l1i_ways = 4;
  std::uint32_t line_bytes = 64;
  memhier::Replacement l1_replacement = memhier::Replacement::kLru;
  bool model_l1 = true;  ///< false = every access hits (pure-functional mode)
  /// MESI mode: L1D lines carry coherence states, stores to Shared lines
  /// become upgrade misses, and the L1 answers directory probes.
  bool coherent = false;
  /// Decoded basic-block cache (iss.dbb_cache): dispatch pre-decoded
  /// micro-op blocks instead of re-decoding every retire. Host-side speed
  /// only — simulated cycles, counters and traces are bit-identical either
  /// way (the determinism suite cross-checks the two paths).
  bool dbb_cache = true;
  /// Block-count bound of the decoded-block cache (iss.dbb_blocks).
  std::uint64_t dbb_blocks = 1024;
};

/// An L1 line-fill request (or dirty writeback) for the memory hierarchy.
struct LineRequest {
  Addr line_addr = 0;
  bool is_store = false;     ///< triggered by a store (write-allocate)
  bool is_ifetch = false;
  bool is_writeback = false; ///< dirty eviction: no response expected
};

enum class StepStatus : std::uint8_t {
  kRetired,      ///< one instruction executed (requests may be non-empty)
  kRawStall,     ///< blocked: a source register awaits an in-flight fill
  kIFetchStall,  ///< blocked: instruction line not yet filled
  kHalted,       ///< the program has exited
};

/// Result of one step() / step_block() attempt. The vector is reused
/// between calls; callers keep one instance alive across the run so the
/// request buffer never reallocates on the hot path.
struct CoreStepResult {
  StepStatus status = StepStatus::kHalted;
  std::vector<LineRequest> requests;
  bool exited = false;
  std::int64_t exit_code = 0;

  CoreStepResult() { requests.reserve(16); }
};

/// Raw event counters, surfaced to the simulator's statistic tree.
struct CoreCounters {
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t l1d_accesses = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l1i_accesses = 0;
  std::uint64_t l1i_misses = 0;
  std::uint64_t raw_stall_cycles = 0;
  std::uint64_t ifetch_stall_cycles = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t vector_instructions = 0;
  std::uint64_t branch_instructions = 0;
  std::uint64_t fp_instructions = 0;
  std::uint64_t amo_instructions = 0;
  // MESI mode only (always zero otherwise; surfaced to the statistics tree
  // only when coherence is on).
  std::uint64_t coh_upgrades = 0;       ///< stores to Shared lines (GetM)
  std::uint64_t coh_invalidations = 0;  ///< kInv probes that hit a line
  std::uint64_t coh_downgrades = 0;     ///< kDowngrade probes that hit
};

class CoreModel {
 public:
  CoreModel(CoreId id, SparseMemory* memory, const CoreConfig& config);

  CoreId id() const { return id_; }
  Hart& hart() { return hart_; }
  const Hart& hart() const { return hart_; }
  const CoreCounters& counters() const { return counters_; }
  const CoreConfig& config() const { return config_; }

  /// Resets the hart to `entry_pc`, flushes L1s and all bookkeeping.
  void reset(Addr entry_pc);

  bool halted() const { return halted_; }
  std::size_t outstanding_misses() const { return outstanding_.live_count(); }
  /// Lines this core's MSHRs are waiting on, sorted (hang diagnostics).
  std::vector<Addr> outstanding_lines() const { return outstanding_.lines(); }

  /// Attempts to simulate one instruction for the current cycle.
  /// `cycle` is forwarded to the hart for the cycle CSR.
  void step(CoreStepResult& out, Cycle cycle);

  /// Batched stepping fast path: attempts up to `max_steps` instructions in
  /// a tight loop, paying the per-call dispatch once per block. Two modes:
  ///  * advance_cycles == true — instruction i runs at cycle
  ///    `first_cycle + i` and the block additionally stops after the first
  ///    instruction that emits line requests (the caller must route them
  ///    with simulated time parked at that instruction's cycle). Only legal
  ///    while no scheduler event can fire inside the block's cycle span.
  ///  * advance_cycles == false — every attempt runs at `first_cycle`
  ///    (interleave-quantum semantics: up to Q instructions back-to-back in
  ///    one scheduling round) and requests accumulate across instructions.
  /// Either way the block ends on a stall, on program exit, or after
  /// `max_steps` retires; `out.status` reflects the final attempt and
  /// `out.requests` holds every request the block emitted, in emission
  /// order. Returns the number of instructions retired. Counters, stall
  /// attribution and request order are identical to an equivalent sequence
  /// of step() calls.
  std::uint32_t step_block(CoreStepResult& out, Cycle first_cycle,
                           std::uint32_t max_steps, bool advance_cycles);

  /// The memory hierarchy finished servicing `line_addr`. Inserts the line
  /// into the right L1(s); dirty evictions are appended to `writebacks` as
  /// new requests (already line-aligned). In MESI mode `grant` sets the
  /// line's coherence state; a store that merged into an in-flight read
  /// granted only Shared re-emits an upgrade request through `writebacks`.
  void fill(Addr line_addr, memhier::CohGrant grant,
            std::vector<LineRequest>& writebacks);
  /// Non-coherent convenience overload (grant = kNone).
  void fill(Addr line_addr, std::vector<LineRequest>& writebacks) {
    fill(line_addr, memhier::CohGrant::kNone, writebacks);
  }

  /// Directory probe (MESI mode): demote the line to Shared
  /// (`to_shared`) or invalidate it. Returns whether the local copy was
  /// dirty; absent lines (silently evicted or still in flight) are a no-op.
  bool coherence_probe(Addr line_addr, bool to_shared);

  // ----- L1D introspection (tests / litmus assertions) -----
  bool l1d_has(Addr line_addr) const { return l1d_.probe(line_addr); }
  bool l1d_dirty(Addr line_addr) const { return l1d_.is_dirty(line_addr); }
  memhier::CohState l1d_state(Addr line_addr) const {
    return l1d_.coh_state(line_addr);
  }

  // ----- fast-forward / checkpoint support -----

  /// Executes one instruction purely functionally — no L1 modelling, no
  /// stalls, no counters (Spike-style fast-forward). `cycle` feeds the cycle
  /// CSR. Returns the executed instruction's StepInfo (pc + data accesses,
  /// for optional cache warm-up), or nullptr when the core is halted. Sets
  /// halted() on program exit. The pointer is valid until the next step of
  /// this core.
  const StepInfo* ffwd_step(Cycle cycle);

  /// Batch variant of ffwd_step() for the stretch of a skip that needs no
  /// per-instruction reporting (outside the warm-up window): executes up to
  /// `n` instructions in a tight loop, stopping early on program exit or —
  /// when `stop_at_roi` — after a roi_begin CSR write. Returns the number
  /// executed (the exiting / roi-marking instruction included). The last
  /// instruction's StepInfo is available via last_ffwd_info().
  std::uint64_t ffwd_run(std::uint64_t n, Cycle cycle, bool stop_at_roi);

  /// StepInfo of the most recent ffwd_step()/ffwd_run() instruction.
  const StepInfo& last_ffwd_info() const { return step_info_; }

  /// Raw L1 arrays, exposed for fast-forward cache warm-up (which installs
  /// and demotes lines directly so the coherence counters stay untouched)
  /// and for checkpointing.
  memhier::CacheArray& l1d_array() { return l1d_; }
  memhier::CacheArray& l1i_array() { return l1i_; }

  /// Checkpoint: hart architectural state, both L1 arrays and the event
  /// counters. Only legal at a quiesce point — throws SimError if any miss
  /// is outstanding (MSHRs and RAW bookkeeping are then empty by
  /// construction and are not serialized).
  void save_state(BinWriter& w) const;
  void load_state(BinReader& r);

  /// Decoded-block cache counters (zero while iss.dbb_cache=off; surfaced
  /// to the statistics tree only when the cache is on). Host-side
  /// observability, deliberately outside the serialized CoreCounters.
  const DbbStats& dbb_stats() const {
    static const DbbStats kNone;
    return dbb_ != nullptr ? dbb_->stats() : kNone;
  }

  /// Drops every host-side handle into the L1 tag arrays plus the
  /// decoded-block continuation. Anything that mutates the arrays without
  /// going through this core's own step/fill/probe path — the fast-forward
  /// cache warmer installs and invalidates lines directly — must call this
  /// on every core first. Behaviour-neutral: the handles only elide way
  /// scans.
  void flush_host_refs() {
    drop_hot_refs();
    dbb_block_ = nullptr;
    dbb_index_ = 0;
  }

  /// Attributes `n` additional stalled cycles to this core. Used by the
  /// Orchestrator when it fast-forwards simulated time over a stretch where
  /// every live core is blocked (pure bookkeeping; behaviour-neutral).
  void account_stall_cycles(Cycle n) {
    if (halted_) return;
    if (waiting_ifetch_) {
      counters_.ifetch_stall_cycles += n;
    } else {
      counters_.raw_stall_cycles += n;
    }
  }

 private:
  /// One in-flight L1 miss (per line, i.e. an MSHR).
  struct Outstanding {
    bool data = false;          ///< some data access waits on this line
    bool ifetch = false;        ///< the fetch unit waits on this line
    bool dirty_on_fill = false; ///< a store merged into this miss
    /// MESI: a probe that arrived while this fill was in flight. The
    /// directory serialized that probe's transaction *after* ours, so it is
    /// applied to the line right after the fill installs it.
    /// 0 = none, 1 = downgrade, 2 = invalidate.
    std::uint8_t deferred_probe = 0;
    std::vector<isa::RegRef> dest_regs;  ///< regs made available by the fill
  };

  /// Pooled MSHR table. A core has at most a handful of misses in flight,
  /// so a linear scan over reusable slots beats a node-based hash map —
  /// crucially, retiring a miss no longer frees its node (and its
  /// dest_regs buffer): slots are recycled, so the steady-state miss path
  /// allocates nothing. This is the per-miss hot structure on miss-heavy
  /// kernels (matmul/spmv sustain one miss every ~7 instructions).
  class MshrTable {
   public:
    struct Slot {
      Addr line = 0;
      bool live = false;
      Outstanding miss;
    };

    /// Live entry for `line`, or nullptr.
    Slot* find(Addr line) {
      for (Slot& slot : slots_) {
        if (slot.live && slot.line == line) return &slot;
      }
      return nullptr;
    }

    /// try_emplace semantics: the live entry for `line`, allocating a
    /// fresh (default-state) one if absent. `second` is true on insertion.
    std::pair<Slot*, bool> get_or_add(Addr line) {
      Slot* free = nullptr;
      for (Slot& slot : slots_) {
        if (slot.live) {
          if (slot.line == line) return {&slot, false};
        } else if (free == nullptr) {
          free = &slot;
        }
      }
      if (free == nullptr) {
        // Growth moves slots; callers never hold Slot* across get_or_add.
        free = &slots_.emplace_back();
      }
      free->line = line;
      free->live = true;
      ++live_count_;
      return {free, true};
    }

    /// Retires a slot, keeping its dest_regs capacity for reuse.
    void release(Slot* slot) {
      slot->live = false;
      slot->miss.data = false;
      slot->miss.ifetch = false;
      slot->miss.dirty_on_fill = false;
      slot->miss.deferred_probe = 0;
      slot->miss.dest_regs.clear();
      --live_count_;
    }

    void clear() {
      for (Slot& slot : slots_) {
        if (slot.live) release(&slot);
      }
    }

    std::size_t live_count() const { return live_count_; }

    /// Live line addresses, sorted (diagnostics).
    std::vector<Addr> lines() const {
      std::vector<Addr> out;
      out.reserve(live_count_);
      for (const Slot& slot : slots_) {
        if (slot.live) out.push_back(slot.line);
      }
      std::sort(out.begin(), out.end());
      return out;
    }

   private:
    std::vector<Slot> slots_;
    std::size_t live_count_ = 0;
  };

  /// Decode for the fast-forward (functional-only) paths: reuses the
  /// decoded-block cache when it is on, otherwise decodes in place — the
  /// same two variants as the detailed step paths.
  const isa::DecodedInst& decode_ffwd(Addr pc);
  /// One step() attempt that appends requests instead of clearing them —
  /// the shared core of step() and step_block().
  StepStatus step_one(CoreStepResult& out, Cycle cycle);
  /// Bit-identical reformulation of step_one() dispatching from the decoded
  /// basic-block cache (iss.dbb_cache=on). Every counter bump, LRU clock
  /// tick, request emission and stall decision replicates step_one()'s.
  StepStatus step_one_dbb(CoreStepResult& out, Cycle cycle);
  /// Drops the intra-dispatch L1 hit handles. Must run whenever tag-array
  /// entries may have moved or changed (fills, probes, reset, restore).
  void drop_hot_refs() {
    hot_ifetch_ = nullptr;
    hot_ifetch_line_ = ~Addr{0};
    hot_data_ = nullptr;
    hot_data_line_ = ~Addr{0};
  }
  void insert_l1d(Addr line_addr, bool dirty, memhier::CohState state,
                  std::vector<LineRequest>& writebacks);
  bool sources_pending(const isa::RegRef* srcs, std::uint8_t num_srcs) const;
  void mark_pending(const isa::RegRef& reg, int delta);
  unsigned effective_group(const isa::RegRef& reg) const;

  CoreId id_;
  CoreConfig config_;
  Hart hart_;
  memhier::CacheArray l1d_;
  memhier::CacheArray l1i_;
  CoreCounters counters_;

  StepInfo step_info_;
  isa::DecodedInst ffwd_inst_;  ///< decode_ffwd scratch when the dbb is off

  // ----- decoded-block dispatch state (iss.dbb_cache; all host-side) -----
  std::unique_ptr<DbbCache> dbb_;      ///< null when the cache is off
  const DbbBlock* dbb_block_ = nullptr;  ///< continuation: current block
  std::uint32_t dbb_index_ = 0;          ///< next micro-op within it
  /// L1 hit handles for back-to-back same-line accesses. Valid only while
  /// no fill/probe/restore has run since they were taken (drop_hot_refs).
  memhier::CacheArray::Entry* hot_ifetch_ = nullptr;
  Addr hot_ifetch_line_ = ~Addr{0};
  memhier::CacheArray::Entry* hot_data_ = nullptr;
  Addr hot_data_line_ = ~Addr{0};

  // Per-register in-flight fill counts (RAW tracking). pending_total_
  // mirrors the sum so the no-fill-in-flight fast path is one compare.
  std::uint16_t pending_x_[32] = {};
  std::uint16_t pending_f_[32] = {};
  std::uint16_t pending_v_[32] = {};
  std::uint32_t pending_total_ = 0;

  MshrTable outstanding_;
  bool waiting_ifetch_ = false;
  bool halted_ = true;
};

}  // namespace coyote::iss
