// CoreModel: one simulated core as the Orchestrator sees it — the functional
// hart plus the L1 instruction/data cache models and the miss / RAW-
// dependency bookkeeping. This is the "minimally modified Spike" of the
// paper: it can attempt one instruction per cycle and reports
//   * retired instructions together with any new L1 line misses, and
//   * stalls, either on a RAW dependency against an in-flight load or on an
//     instruction-fetch miss.
// The memory hierarchy answers misses through fill().
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "isa/decoder.h"
#include "iss/hart.h"
#include "memhier/cache_array.h"
#include "memhier/msg.h"

namespace coyote {
class BinWriter;
class BinReader;
}  // namespace coyote

namespace coyote::iss {

/// Build-time configuration of one core.
struct CoreConfig {
  VectorConfig vector;
  std::uint64_t l1d_size_bytes = 32 * 1024;
  std::uint32_t l1d_ways = 8;
  std::uint64_t l1i_size_bytes = 32 * 1024;
  std::uint32_t l1i_ways = 4;
  std::uint32_t line_bytes = 64;
  memhier::Replacement l1_replacement = memhier::Replacement::kLru;
  bool model_l1 = true;  ///< false = every access hits (pure-functional mode)
  /// MESI mode: L1D lines carry coherence states, stores to Shared lines
  /// become upgrade misses, and the L1 answers directory probes.
  bool coherent = false;
};

/// An L1 line-fill request (or dirty writeback) for the memory hierarchy.
struct LineRequest {
  Addr line_addr = 0;
  bool is_store = false;     ///< triggered by a store (write-allocate)
  bool is_ifetch = false;
  bool is_writeback = false; ///< dirty eviction: no response expected
};

enum class StepStatus : std::uint8_t {
  kRetired,      ///< one instruction executed (requests may be non-empty)
  kRawStall,     ///< blocked: a source register awaits an in-flight fill
  kIFetchStall,  ///< blocked: instruction line not yet filled
  kHalted,       ///< the program has exited
};

/// Result of one step() / step_block() attempt. The vector is reused
/// between calls; callers keep one instance alive across the run so the
/// request buffer never reallocates on the hot path.
struct CoreStepResult {
  StepStatus status = StepStatus::kHalted;
  std::vector<LineRequest> requests;
  bool exited = false;
  std::int64_t exit_code = 0;

  CoreStepResult() { requests.reserve(16); }
};

/// Raw event counters, surfaced to the simulator's statistic tree.
struct CoreCounters {
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t l1d_accesses = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l1i_accesses = 0;
  std::uint64_t l1i_misses = 0;
  std::uint64_t raw_stall_cycles = 0;
  std::uint64_t ifetch_stall_cycles = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t vector_instructions = 0;
  std::uint64_t branch_instructions = 0;
  std::uint64_t fp_instructions = 0;
  std::uint64_t amo_instructions = 0;
  // MESI mode only (always zero otherwise; surfaced to the statistics tree
  // only when coherence is on).
  std::uint64_t coh_upgrades = 0;       ///< stores to Shared lines (GetM)
  std::uint64_t coh_invalidations = 0;  ///< kInv probes that hit a line
  std::uint64_t coh_downgrades = 0;     ///< kDowngrade probes that hit
};

class CoreModel {
 public:
  CoreModel(CoreId id, SparseMemory* memory, const CoreConfig& config);

  CoreId id() const { return id_; }
  Hart& hart() { return hart_; }
  const Hart& hart() const { return hart_; }
  const CoreCounters& counters() const { return counters_; }
  const CoreConfig& config() const { return config_; }

  /// Resets the hart to `entry_pc`, flushes L1s and all bookkeeping.
  void reset(Addr entry_pc);

  bool halted() const { return halted_; }
  std::size_t outstanding_misses() const { return outstanding_.size(); }
  /// Lines this core's MSHRs are waiting on, sorted (hang diagnostics).
  std::vector<Addr> outstanding_lines() const {
    std::vector<Addr> lines;
    lines.reserve(outstanding_.size());
    for (const auto& [line, miss] : outstanding_) {
      (void)miss;
      lines.push_back(line);
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  }

  /// Attempts to simulate one instruction for the current cycle.
  /// `cycle` is forwarded to the hart for the cycle CSR.
  void step(CoreStepResult& out, Cycle cycle);

  /// Batched stepping fast path: attempts up to `max_steps` instructions in
  /// a tight loop, paying the per-call dispatch once per block. Two modes:
  ///  * advance_cycles == true — instruction i runs at cycle
  ///    `first_cycle + i` and the block additionally stops after the first
  ///    instruction that emits line requests (the caller must route them
  ///    with simulated time parked at that instruction's cycle). Only legal
  ///    while no scheduler event can fire inside the block's cycle span.
  ///  * advance_cycles == false — every attempt runs at `first_cycle`
  ///    (interleave-quantum semantics: up to Q instructions back-to-back in
  ///    one scheduling round) and requests accumulate across instructions.
  /// Either way the block ends on a stall, on program exit, or after
  /// `max_steps` retires; `out.status` reflects the final attempt and
  /// `out.requests` holds every request the block emitted, in emission
  /// order. Returns the number of instructions retired. Counters, stall
  /// attribution and request order are identical to an equivalent sequence
  /// of step() calls.
  std::uint32_t step_block(CoreStepResult& out, Cycle first_cycle,
                           std::uint32_t max_steps, bool advance_cycles);

  /// The memory hierarchy finished servicing `line_addr`. Inserts the line
  /// into the right L1(s); dirty evictions are appended to `writebacks` as
  /// new requests (already line-aligned). In MESI mode `grant` sets the
  /// line's coherence state; a store that merged into an in-flight read
  /// granted only Shared re-emits an upgrade request through `writebacks`.
  void fill(Addr line_addr, memhier::CohGrant grant,
            std::vector<LineRequest>& writebacks);
  /// Non-coherent convenience overload (grant = kNone).
  void fill(Addr line_addr, std::vector<LineRequest>& writebacks) {
    fill(line_addr, memhier::CohGrant::kNone, writebacks);
  }

  /// Directory probe (MESI mode): demote the line to Shared
  /// (`to_shared`) or invalidate it. Returns whether the local copy was
  /// dirty; absent lines (silently evicted or still in flight) are a no-op.
  bool coherence_probe(Addr line_addr, bool to_shared);

  // ----- L1D introspection (tests / litmus assertions) -----
  bool l1d_has(Addr line_addr) const { return l1d_.probe(line_addr); }
  bool l1d_dirty(Addr line_addr) const { return l1d_.is_dirty(line_addr); }
  memhier::CohState l1d_state(Addr line_addr) const {
    return l1d_.coh_state(line_addr);
  }

  // ----- fast-forward / checkpoint support -----

  /// Executes one instruction purely functionally — no L1 modelling, no
  /// stalls, no counters (Spike-style fast-forward). `cycle` feeds the cycle
  /// CSR. Returns the executed instruction's StepInfo (pc + data accesses,
  /// for optional cache warm-up), or nullptr when the core is halted. Sets
  /// halted() on program exit. The pointer is valid until the next step of
  /// this core.
  const StepInfo* ffwd_step(Cycle cycle);

  /// Batch variant of ffwd_step() for the stretch of a skip that needs no
  /// per-instruction reporting (outside the warm-up window): executes up to
  /// `n` instructions in a tight loop, stopping early on program exit or —
  /// when `stop_at_roi` — after a roi_begin CSR write. Returns the number
  /// executed (the exiting / roi-marking instruction included). The last
  /// instruction's StepInfo is available via last_ffwd_info().
  std::uint64_t ffwd_run(std::uint64_t n, Cycle cycle, bool stop_at_roi);

  /// StepInfo of the most recent ffwd_step()/ffwd_run() instruction.
  const StepInfo& last_ffwd_info() const { return step_info_; }

  /// Raw L1 arrays, exposed for fast-forward cache warm-up (which installs
  /// and demotes lines directly so the coherence counters stay untouched)
  /// and for checkpointing.
  memhier::CacheArray& l1d_array() { return l1d_; }
  memhier::CacheArray& l1i_array() { return l1i_; }

  /// Checkpoint: hart architectural state, both L1 arrays and the event
  /// counters. Only legal at a quiesce point — throws SimError if any miss
  /// is outstanding (MSHRs and RAW bookkeeping are then empty by
  /// construction and are not serialized).
  void save_state(BinWriter& w) const;
  void load_state(BinReader& r);

  /// Attributes `n` additional stalled cycles to this core. Used by the
  /// Orchestrator when it fast-forwards simulated time over a stretch where
  /// every live core is blocked (pure bookkeeping; behaviour-neutral).
  void account_stall_cycles(Cycle n) {
    if (halted_) return;
    if (waiting_ifetch_) {
      counters_.ifetch_stall_cycles += n;
    } else {
      counters_.raw_stall_cycles += n;
    }
  }

 private:
  /// Instruction-class buckets for the per-retire mix counters, resolved
  /// once at decode time instead of via predicate chains on every retire.
  enum class OpClass : std::uint8_t { kOther, kVector, kBranch, kFp, kAmo };

  /// Cached decode + operand metadata. Kept small and inline: the decode
  /// cache is the per-core hot data structure and its footprint bounds how
  /// many cores fit in the host cache (it dominates Figure 3 scaling).
  struct DecodeEntry {
    Addr pc = ~Addr{0};
    isa::DecodedInst inst;
    std::uint8_t num_srcs = 0;
    std::uint8_t num_dsts = 0;
    OpClass op_class = OpClass::kOther;
    isa::RegRef srcs[5];  ///< max: masked indexed vector store (4) + slack
    isa::RegRef dsts[2];  ///< every supported shape writes at most 1
  };

  /// One in-flight L1 miss (per line, i.e. an MSHR).
  struct Outstanding {
    bool data = false;          ///< some data access waits on this line
    bool ifetch = false;        ///< the fetch unit waits on this line
    bool dirty_on_fill = false; ///< a store merged into this miss
    /// MESI: a probe that arrived while this fill was in flight. The
    /// directory serialized that probe's transaction *after* ours, so it is
    /// applied to the line right after the fill installs it.
    /// 0 = none, 1 = downgrade, 2 = invalidate.
    std::uint8_t deferred_probe = 0;
    std::vector<isa::RegRef> dest_regs;  ///< regs made available by the fill
  };

  static constexpr std::size_t kDecodeCacheSize = 2048;

  const DecodeEntry& decode_at(Addr pc);
  /// One step() attempt that appends requests instead of clearing them —
  /// the shared core of step() and step_block().
  StepStatus step_one(CoreStepResult& out, Cycle cycle);
  void insert_l1d(Addr line_addr, bool dirty, memhier::CohState state,
                  std::vector<LineRequest>& writebacks);
  bool sources_pending(const DecodeEntry& entry) const;
  void mark_pending(const isa::RegRef& reg, int delta);
  unsigned effective_group(const isa::RegRef& reg) const;

  CoreId id_;
  CoreConfig config_;
  Hart hart_;
  memhier::CacheArray l1d_;
  memhier::CacheArray l1i_;
  CoreCounters counters_;

  std::vector<DecodeEntry> decode_cache_;
  StepInfo step_info_;

  // Per-register in-flight fill counts (RAW tracking).
  std::uint16_t pending_x_[32] = {};
  std::uint16_t pending_f_[32] = {};
  std::uint16_t pending_v_[32] = {};

  std::unordered_map<Addr, Outstanding> outstanding_;
  bool waiting_ifetch_ = false;
  bool halted_ = true;
};

}  // namespace coyote::iss
