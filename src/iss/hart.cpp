#include "iss/hart.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/binio.h"
#include "common/bits.h"
#include "common/error.h"
#include "isa/disasm.h"
#include "iss/csr.h"

namespace coyote::iss {

namespace {

// Linux-compatible syscall numbers used by the baremetal runtime.
constexpr std::uint64_t kSysExit = 93;
constexpr std::uint64_t kSysWrite = 64;

std::uint64_t nan_box(float value) {
  std::uint32_t bits32;
  std::memcpy(&bits32, &value, 4);
  return 0xFFFFFFFF00000000ULL | bits32;
}

float unbox_float(std::uint64_t bits64) {
  // A properly NaN-boxed single lives in the low 32 bits; anything else is
  // treated as the canonical NaN, per the F spec.
  if ((bits64 >> 32) != 0xFFFFFFFFULL) {
    return std::numeric_limits<float>::quiet_NaN();
  }
  float value;
  const auto bits32 = static_cast<std::uint32_t>(bits64);
  std::memcpy(&value, &bits32, 4);
  return value;
}

double bits_to_double(std::uint64_t bits64) {
  double value;
  std::memcpy(&value, &bits64, 8);
  return value;
}

std::uint64_t double_to_bits(double value) {
  std::uint64_t bits64;
  std::memcpy(&bits64, &value, 8);
  return bits64;
}

std::int64_t sdiv(std::int64_t a, std::int64_t b) {
  if (b == 0) return -1;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return a;
  return a / b;
}
std::int64_t srem(std::int64_t a, std::int64_t b) {
  if (b == 0) return a;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return 0;
  return a % b;
}
std::int32_t sdiv32(std::int32_t a, std::int32_t b) {
  if (b == 0) return -1;
  if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return a;
  return a / b;
}
std::int32_t srem32(std::int32_t a, std::int32_t b) {
  if (b == 0) return a;
  if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return 0;
  return a % b;
}

std::int64_t fcvt_to_i64(double value) {
  if (std::isnan(value)) return std::numeric_limits<std::int64_t>::max();
  if (value >= 0x1p63) return std::numeric_limits<std::int64_t>::max();
  if (value < -0x1p63) return std::numeric_limits<std::int64_t>::min();
  return static_cast<std::int64_t>(value);
}
std::int32_t fcvt_to_i32(double value) {
  if (std::isnan(value)) return std::numeric_limits<std::int32_t>::max();
  if (value >= 0x1p31) return std::numeric_limits<std::int32_t>::max();
  if (value < -0x1p31) return std::numeric_limits<std::int32_t>::min();
  return static_cast<std::int32_t>(value);
}

}  // namespace

Hart::Hart(CoreId id, SparseMemory* memory, VectorConfig vcfg)
    : id_(id), memory_(memory), vlen_bits_(vcfg.vlen_bits) {
  if (memory_ == nullptr) throw ConfigError("Hart requires a memory");
  if (vlen_bits_ < 64 || vlen_bits_ > 65536 || !is_pow2(vlen_bits_)) {
    throw ConfigError(strfmt("bad VLEN %u (need a power of two in [64,65536])",
                             vlen_bits_));
  }
  v_.assign(static_cast<std::size_t>(32) * vlenb(), 0);
}

void Hart::reset(Addr entry_pc) {
  pc_ = entry_pc;
  std::memset(x_, 0, sizeof(x_));
  std::memset(f_, 0, sizeof(f_));
  std::fill(v_.begin(), v_.end(), 0);
  vl_ = 0;
  vtype_ = 0;
  instret_ = 0;
  memory_->clear_reservation(id_);
  console_.clear();
  roi_marker_ = false;
}

void Hart::save_state(BinWriter& w) const {
  w.u64(pc_);
  for (std::uint64_t reg : x_) w.u64(reg);
  for (std::uint64_t reg : f_) w.u64(reg);
  w.u64(v_.size());
  w.bytes(v_.data(), v_.size());
  w.u64(vl_);
  w.u64(vtype_);
  w.u64(fcsr_);
  w.u64(mstatus_);
  w.u64(instret_);
  w.str(console_);
  w.b(roi_marker_);
  w.u64(tohost_addr_);
}

void Hart::load_state(BinReader& r) {
  pc_ = r.u64();
  for (std::uint64_t& reg : x_) reg = r.u64();
  for (std::uint64_t& reg : f_) reg = r.u64();
  const std::uint64_t vbytes = r.u64();
  if (vbytes != v_.size()) {
    throw ExecutionError(strfmt("checkpoint VLEN mismatch: core %u has %zu "
                                "vector bytes, checkpoint %llu",
                                id_, v_.size(),
                                static_cast<unsigned long long>(vbytes)));
  }
  r.bytes(v_.data(), v_.size());
  vl_ = r.u64();
  vtype_ = r.u64();
  fcsr_ = r.u64();
  mstatus_ = r.u64();
  instret_ = r.u64();
  console_ = r.str();
  roi_marker_ = r.b();
  tohost_addr_ = r.u64();
}

double Hart::f64(unsigned index) const { return bits_to_double(f_[index]); }
void Hart::set_f64(unsigned index, double value) {
  f_[index] = double_to_bits(value);
}

std::uint64_t Hart::csr_read(std::uint32_t address) const {
  switch (address) {
    case csr::kFflags: return fcsr_ & 0x1F;
    case csr::kFrm: return (fcsr_ >> 5) & 0x7;
    case csr::kFcsr: return fcsr_;
    case csr::kCycle:
    case csr::kTime:
    case csr::kMcycle: return cycle_;
    case csr::kInstret:
    case csr::kMinstret: return instret_;
    case csr::kVl: return vl_;
    case csr::kVtype: return vtype_;
    case csr::kVlenb: return vlenb();
    case csr::kMstatus: return mstatus_;
    case csr::kMhartid: return id_;
    case csr::kRoiBegin: return 0;
    default:
      throw ExecutionError(strfmt("core %u: read of unsupported CSR 0x%x",
                                  id_, address));
  }
}

void Hart::csr_write(std::uint32_t address, std::uint64_t value) {
  switch (address) {
    case csr::kFflags: fcsr_ = (fcsr_ & ~0x1FULL) | (value & 0x1F); return;
    case csr::kFrm: fcsr_ = (fcsr_ & 0x1F) | ((value & 0x7) << 5); return;
    case csr::kFcsr: fcsr_ = value & 0xFF; return;
    case csr::kMstatus: mstatus_ = value; return;
    case csr::kRoiBegin: roi_marker_ = true; return;
    default:
      throw ExecutionError(strfmt("core %u: write of unsupported CSR 0x%x",
                                  id_, address));
  }
}

namespace {

/// Per-trap stack adapter giving the emulator its narrow window onto the
/// hart (IssSyscallIf): registers, memory, cycle, console and the exit
/// latch of the in-flight instruction.
class HartSyscallWindow final : public IssSyscallIf {
 public:
  HartSyscallWindow(Hart& hart, StepInfo& info) : hart_(hart), info_(info) {}

  unsigned hart_id() const override { return hart_.id(); }
  std::uint64_t read_register(unsigned idx) const override {
    return hart_.x(idx);
  }
  void write_register(unsigned idx, std::uint64_t value) override {
    hart_.set_x(idx, value);
  }
  SparseMemory& guest_memory() override { return hart_.memory(); }
  Cycle cycle() const override { return hart_.cycle_csr(); }
  void console_write(std::string_view text) override {
    hart_.console_append(text);
  }
  void sys_exit(std::int64_t status) override {
    info_.exited = true;
    info_.exit_code = status;
  }

 private:
  Hart& hart_;
  StepInfo& info_;
};

}  // namespace

void Hart::note_tohost(std::uint64_t value, StepInfo& info) {
  if (syscall_emulator_ == nullptr) return;
  HartSyscallWindow window(*this, info);
  syscall_emulator_->handle_tohost(window, value);
}

void Hart::do_syscall(StepInfo& info) {
  if (syscall_emulator_ != nullptr) {
    HartSyscallWindow window(*this, info);
    syscall_emulator_->execute_syscall(window);
    return;
  }
  const std::uint64_t number = x_[17];  // a7
  switch (number) {
    case kSysExit:
      info.exited = true;
      info.exit_code = static_cast<std::int64_t>(x_[10]);
      return;
    case kSysWrite: {
      // write(fd, buf, count) to stdout/stderr is captured into console().
      const std::uint64_t fd = x_[10];
      const Addr buf = x_[11];
      const std::uint64_t count = x_[12];
      if (fd != 1 && fd != 2) {
        throw ExecutionError(strfmt("core %u: write to unsupported fd %llu",
                                    id_,
                                    static_cast<unsigned long long>(fd)));
      }
      for (std::uint64_t i = 0; i < count; ++i) {
        console_.push_back(static_cast<char>(memory_->read_u8(buf + i)));
      }
      x_[10] = count;
      return;
    }
    default:
      throw ExecutionError(strfmt("core %u: unsupported syscall %llu", id_,
                                  static_cast<unsigned long long>(number)));
  }
}

void Hart::execute(const isa::DecodedInst& inst, StepInfo& info) {
  using isa::Op;
  info.pc = pc_;
  Addr next_pc = pc_ + 4;

  const auto rs1 = [&]() { return x_[inst.rs1]; };
  const auto rs2 = [&]() { return x_[inst.rs2]; };
  const auto wr = [&](std::uint64_t value) {
    if (inst.rd != 0) x_[inst.rd] = value;
  };
  const auto wr32 = [&](std::uint32_t value) {
    wr(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(value))));
  };
  const auto frs1d = [&]() { return bits_to_double(f_[inst.rs1]); };
  const auto frs2d = [&]() { return bits_to_double(f_[inst.rs2]); };
  const auto wfd = [&](double value) { f_[inst.rd] = double_to_bits(value); };

  switch (inst.op) {
    case Op::kLui: wr(static_cast<std::uint64_t>(inst.imm)); break;
    case Op::kAuipc: wr(pc_ + static_cast<std::uint64_t>(inst.imm)); break;
    case Op::kJal:
      wr(pc_ + 4);
      next_pc = pc_ + static_cast<std::uint64_t>(inst.imm);
      break;
    case Op::kJalr: {
      const Addr target = (rs1() + static_cast<std::uint64_t>(inst.imm)) & ~1ULL;
      wr(pc_ + 4);
      next_pc = target;
      break;
    }
    case Op::kBeq: if (rs1() == rs2()) next_pc = pc_ + inst.imm; break;
    case Op::kBne: if (rs1() != rs2()) next_pc = pc_ + inst.imm; break;
    case Op::kBlt:
      if (static_cast<std::int64_t>(rs1()) < static_cast<std::int64_t>(rs2()))
        next_pc = pc_ + inst.imm;
      break;
    case Op::kBge:
      if (static_cast<std::int64_t>(rs1()) >= static_cast<std::int64_t>(rs2()))
        next_pc = pc_ + inst.imm;
      break;
    case Op::kBltu: if (rs1() < rs2()) next_pc = pc_ + inst.imm; break;
    case Op::kBgeu: if (rs1() >= rs2()) next_pc = pc_ + inst.imm; break;

    case Op::kLb:
      wr(static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int8_t>(load<std::uint8_t>(rs1() + inst.imm, info)))));
      break;
    case Op::kLh:
      wr(static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int16_t>(load<std::uint16_t>(rs1() + inst.imm, info)))));
      break;
    case Op::kLw:
      wr(static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(load<std::uint32_t>(rs1() + inst.imm, info)))));
      break;
    case Op::kLd: wr(load<std::uint64_t>(rs1() + inst.imm, info)); break;
    case Op::kLbu: wr(load<std::uint8_t>(rs1() + inst.imm, info)); break;
    case Op::kLhu: wr(load<std::uint16_t>(rs1() + inst.imm, info)); break;
    case Op::kLwu: wr(load<std::uint32_t>(rs1() + inst.imm, info)); break;
    case Op::kSb:
      store<std::uint8_t>(rs1() + inst.imm, static_cast<std::uint8_t>(rs2()),
                          info);
      break;
    case Op::kSh:
      store<std::uint16_t>(rs1() + inst.imm, static_cast<std::uint16_t>(rs2()),
                           info);
      break;
    case Op::kSw:
      store<std::uint32_t>(rs1() + inst.imm, static_cast<std::uint32_t>(rs2()),
                           info);
      break;
    case Op::kSd: store<std::uint64_t>(rs1() + inst.imm, rs2(), info); break;

    case Op::kAddi: wr(rs1() + static_cast<std::uint64_t>(inst.imm)); break;
    case Op::kSlti:
      wr(static_cast<std::int64_t>(rs1()) < inst.imm ? 1 : 0);
      break;
    case Op::kSltiu:
      wr(rs1() < static_cast<std::uint64_t>(inst.imm) ? 1 : 0);
      break;
    case Op::kXori: wr(rs1() ^ static_cast<std::uint64_t>(inst.imm)); break;
    case Op::kOri: wr(rs1() | static_cast<std::uint64_t>(inst.imm)); break;
    case Op::kAndi: wr(rs1() & static_cast<std::uint64_t>(inst.imm)); break;
    case Op::kSlli: wr(rs1() << (inst.imm & 0x3F)); break;
    case Op::kSrli: wr(rs1() >> (inst.imm & 0x3F)); break;
    case Op::kSrai:
      wr(static_cast<std::uint64_t>(static_cast<std::int64_t>(rs1()) >>
                                    (inst.imm & 0x3F)));
      break;
    case Op::kAdd: wr(rs1() + rs2()); break;
    case Op::kSub: wr(rs1() - rs2()); break;
    case Op::kSll: wr(rs1() << (rs2() & 0x3F)); break;
    case Op::kSlt:
      wr(static_cast<std::int64_t>(rs1()) < static_cast<std::int64_t>(rs2())
             ? 1 : 0);
      break;
    case Op::kSltu: wr(rs1() < rs2() ? 1 : 0); break;
    case Op::kXor: wr(rs1() ^ rs2()); break;
    case Op::kSrl: wr(rs1() >> (rs2() & 0x3F)); break;
    case Op::kSra:
      wr(static_cast<std::uint64_t>(static_cast<std::int64_t>(rs1()) >>
                                    (rs2() & 0x3F)));
      break;
    case Op::kOr: wr(rs1() | rs2()); break;
    case Op::kAnd: wr(rs1() & rs2()); break;

    case Op::kAddiw:
      wr32(static_cast<std::uint32_t>(rs1()) +
           static_cast<std::uint32_t>(inst.imm));
      break;
    case Op::kSlliw:
      wr32(static_cast<std::uint32_t>(rs1()) << (inst.imm & 0x1F));
      break;
    case Op::kSrliw:
      wr32(static_cast<std::uint32_t>(rs1()) >> (inst.imm & 0x1F));
      break;
    case Op::kSraiw:
      wr32(static_cast<std::uint32_t>(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(rs1())) >>
          (inst.imm & 0x1F)));
      break;
    case Op::kAddw:
      wr32(static_cast<std::uint32_t>(rs1()) + static_cast<std::uint32_t>(rs2()));
      break;
    case Op::kSubw:
      wr32(static_cast<std::uint32_t>(rs1()) - static_cast<std::uint32_t>(rs2()));
      break;
    case Op::kSllw:
      wr32(static_cast<std::uint32_t>(rs1()) << (rs2() & 0x1F));
      break;
    case Op::kSrlw:
      wr32(static_cast<std::uint32_t>(rs1()) >> (rs2() & 0x1F));
      break;
    case Op::kSraw:
      wr32(static_cast<std::uint32_t>(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(rs1())) >>
          (rs2() & 0x1F)));
      break;

    case Op::kFence:
    case Op::kFenceI:
      break;  // single-threaded functional model: fences are no-ops
    case Op::kEcall:
      do_syscall(info);
      break;
    case Op::kEbreak:
      info.exited = true;
      info.exit_code = -1;
      break;

    case Op::kCsrrw: {
      const auto csr_addr = static_cast<std::uint32_t>(inst.imm);
      const std::uint64_t old = inst.rd != 0 ? csr_read(csr_addr) : 0;
      csr_write(csr_addr, rs1());
      wr(old);
      break;
    }
    case Op::kCsrrs: {
      const auto csr_addr = static_cast<std::uint32_t>(inst.imm);
      const std::uint64_t old = csr_read(csr_addr);
      if (inst.rs1 != 0) csr_write(csr_addr, old | rs1());
      wr(old);
      break;
    }
    case Op::kCsrrc: {
      const auto csr_addr = static_cast<std::uint32_t>(inst.imm);
      const std::uint64_t old = csr_read(csr_addr);
      if (inst.rs1 != 0) csr_write(csr_addr, old & ~rs1());
      wr(old);
      break;
    }
    case Op::kCsrrwi: {
      const auto csr_addr = static_cast<std::uint32_t>(inst.imm);
      const std::uint64_t old = inst.rd != 0 ? csr_read(csr_addr) : 0;
      csr_write(csr_addr, inst.uimm);
      wr(old);
      break;
    }
    case Op::kCsrrsi: {
      const auto csr_addr = static_cast<std::uint32_t>(inst.imm);
      const std::uint64_t old = csr_read(csr_addr);
      if (inst.uimm != 0) csr_write(csr_addr, old | inst.uimm);
      wr(old);
      break;
    }
    case Op::kCsrrci: {
      const auto csr_addr = static_cast<std::uint32_t>(inst.imm);
      const std::uint64_t old = csr_read(csr_addr);
      if (inst.uimm != 0) csr_write(csr_addr, old & ~std::uint64_t{inst.uimm});
      wr(old);
      break;
    }

    case Op::kMul: wr(rs1() * rs2()); break;
    case Op::kMulh:
      wr(static_cast<std::uint64_t>(
          (static_cast<__int128>(static_cast<std::int64_t>(rs1())) *
           static_cast<__int128>(static_cast<std::int64_t>(rs2()))) >> 64));
      break;
    case Op::kMulhsu:
      wr(static_cast<std::uint64_t>(
          (static_cast<__int128>(static_cast<std::int64_t>(rs1())) *
           static_cast<unsigned __int128>(rs2())) >> 64));
      break;
    case Op::kMulhu:
      wr(static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(rs1()) *
           static_cast<unsigned __int128>(rs2())) >> 64));
      break;
    case Op::kDiv:
      wr(static_cast<std::uint64_t>(sdiv(static_cast<std::int64_t>(rs1()),
                                         static_cast<std::int64_t>(rs2()))));
      break;
    case Op::kDivu: wr(rs2() == 0 ? ~0ULL : rs1() / rs2()); break;
    case Op::kRem:
      wr(static_cast<std::uint64_t>(srem(static_cast<std::int64_t>(rs1()),
                                         static_cast<std::int64_t>(rs2()))));
      break;
    case Op::kRemu: wr(rs2() == 0 ? rs1() : rs1() % rs2()); break;
    case Op::kMulw:
      wr32(static_cast<std::uint32_t>(rs1()) * static_cast<std::uint32_t>(rs2()));
      break;
    case Op::kDivw:
      wr32(static_cast<std::uint32_t>(
          sdiv32(static_cast<std::int32_t>(rs1()),
                 static_cast<std::int32_t>(rs2()))));
      break;
    case Op::kDivuw: {
      const auto a = static_cast<std::uint32_t>(rs1());
      const auto b = static_cast<std::uint32_t>(rs2());
      wr32(b == 0 ? ~std::uint32_t{0} : a / b);
      break;
    }
    case Op::kRemw:
      wr32(static_cast<std::uint32_t>(
          srem32(static_cast<std::int32_t>(rs1()),
                 static_cast<std::int32_t>(rs2()))));
      break;
    case Op::kRemuw: {
      const auto a = static_cast<std::uint32_t>(rs1());
      const auto b = static_cast<std::uint32_t>(rs2());
      wr32(b == 0 ? a : a % b);
      break;
    }

    case Op::kFlw: {
      const auto bits32 = load<std::uint32_t>(rs1() + inst.imm, info);
      f_[inst.rd] = 0xFFFFFFFF00000000ULL | bits32;
      break;
    }
    case Op::kFld:
      f_[inst.rd] = load<std::uint64_t>(rs1() + inst.imm, info);
      break;
    case Op::kFsw:
      store<std::uint32_t>(rs1() + inst.imm,
                           static_cast<std::uint32_t>(f_[inst.rs2]), info);
      break;
    case Op::kFsd:
      store<std::uint64_t>(rs1() + inst.imm, f_[inst.rs2], info);
      break;

    case Op::kFaddD: wfd(frs1d() + frs2d()); break;
    case Op::kFsubD: wfd(frs1d() - frs2d()); break;
    case Op::kFmulD: wfd(frs1d() * frs2d()); break;
    case Op::kFdivD: wfd(frs1d() / frs2d()); break;
    case Op::kFsqrtD: wfd(std::sqrt(frs1d())); break;
    case Op::kFsgnjD:
      f_[inst.rd] = (f_[inst.rs1] & ~(1ULL << 63)) | (f_[inst.rs2] & (1ULL << 63));
      break;
    case Op::kFsgnjnD:
      f_[inst.rd] =
          (f_[inst.rs1] & ~(1ULL << 63)) | (~f_[inst.rs2] & (1ULL << 63));
      break;
    case Op::kFsgnjxD:
      f_[inst.rd] = f_[inst.rs1] ^ (f_[inst.rs2] & (1ULL << 63));
      break;
    case Op::kFminD: wfd(std::fmin(frs1d(), frs2d())); break;
    case Op::kFmaxD: wfd(std::fmax(frs1d(), frs2d())); break;
    case Op::kFaddS:
      f_[inst.rd] = nan_box(unbox_float(f_[inst.rs1]) + unbox_float(f_[inst.rs2]));
      break;
    case Op::kFsubS:
      f_[inst.rd] = nan_box(unbox_float(f_[inst.rs1]) - unbox_float(f_[inst.rs2]));
      break;
    case Op::kFmulS:
      f_[inst.rd] = nan_box(unbox_float(f_[inst.rs1]) * unbox_float(f_[inst.rs2]));
      break;
    case Op::kFdivS:
      f_[inst.rd] = nan_box(unbox_float(f_[inst.rs1]) / unbox_float(f_[inst.rs2]));
      break;
    case Op::kFmaddD:
      wfd(std::fma(frs1d(), frs2d(), bits_to_double(f_[inst.rs3])));
      break;
    case Op::kFmsubD:
      wfd(std::fma(frs1d(), frs2d(), -bits_to_double(f_[inst.rs3])));
      break;
    case Op::kFnmsubD:
      wfd(std::fma(-frs1d(), frs2d(), bits_to_double(f_[inst.rs3])));
      break;
    case Op::kFnmaddD:
      wfd(std::fma(-frs1d(), frs2d(), -bits_to_double(f_[inst.rs3])));
      break;
    case Op::kFeqD: wr(frs1d() == frs2d() ? 1 : 0); break;
    case Op::kFltD: wr(frs1d() < frs2d() ? 1 : 0); break;
    case Op::kFleD: wr(frs1d() <= frs2d() ? 1 : 0); break;
    case Op::kFcvtWD:
      wr32(static_cast<std::uint32_t>(fcvt_to_i32(frs1d())));
      break;
    case Op::kFcvtWuD:
      wr32(static_cast<std::uint32_t>(fcvt_to_i32(frs1d())));
      break;
    case Op::kFcvtLD:
      wr(static_cast<std::uint64_t>(fcvt_to_i64(frs1d())));
      break;
    case Op::kFcvtLuD:
      wr(static_cast<std::uint64_t>(fcvt_to_i64(frs1d())));
      break;
    case Op::kFcvtDW:
      wfd(static_cast<double>(static_cast<std::int32_t>(rs1())));
      break;
    case Op::kFcvtDWu:
      wfd(static_cast<double>(static_cast<std::uint32_t>(rs1())));
      break;
    case Op::kFcvtDL:
      wfd(static_cast<double>(static_cast<std::int64_t>(rs1())));
      break;
    case Op::kFcvtDLu: wfd(static_cast<double>(rs1())); break;
    case Op::kFcvtDS: wfd(static_cast<double>(unbox_float(f_[inst.rs1]))); break;
    case Op::kFcvtSD:
      f_[inst.rd] = nan_box(static_cast<float>(frs1d()));
      break;
    case Op::kFmvXD: wr(f_[inst.rs1]); break;
    case Op::kFmvDX: f_[inst.rd] = rs1(); break;
    case Op::kFmvXW:
      wr32(static_cast<std::uint32_t>(f_[inst.rs1]));
      break;
    case Op::kFmvWX:
      f_[inst.rd] = 0xFFFFFFFF00000000ULL | static_cast<std::uint32_t>(rs1());
      break;

    case Op::kIllegal:
      throw ExecutionError(strfmt(
          "core %u: illegal instruction 0x%08x at pc 0x%llx", id_, inst.raw,
          static_cast<unsigned long long>(pc_)));

    default:
      if (isa::is_amo(inst.op)) {
        exec_amo(inst, info);
        break;
      }
      if (isa::is_vector(inst.op)) {
        exec_vector(inst, info);
        break;
      }
      throw ExecutionError(strfmt(
          "core %u: unimplemented instruction '%s' at pc 0x%llx", id_,
          isa::disassemble(inst).c_str(),
          static_cast<unsigned long long>(pc_)));
  }

  x_[0] = 0;
  pc_ = next_pc;
  ++instret_;
}

// RV64A. Atomicity is trivially satisfied: the Orchestrator interleaves
// whole instructions, so a read-modify-write is never torn. LR/SC
// reservations live in the shared SparseMemory, where any hart's store to
// the reserved granule (scalar, AMO or vector) kills them — so a stale SC
// after a remote write correctly fails, in every coherence mode.
void Hart::exec_amo(const isa::DecodedInst& inst, StepInfo& info) {
  using isa::Op;
  const Addr addr = x_[inst.rs1];
  const std::uint64_t src = x_[inst.rs2];
  const auto wr = [&](std::uint64_t value) {
    if (inst.rd != 0) x_[inst.rd] = value;
  };

  switch (inst.op) {
    case Op::kLrW:
      wr(static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(load<std::uint32_t>(addr, info)))));
      memory_->set_reservation(id_, addr);
      return;
    case Op::kLrD:
      wr(load<std::uint64_t>(addr, info));
      memory_->set_reservation(id_, addr);
      return;
    case Op::kScW:
    case Op::kScD: {
      if (memory_->take_reservation(id_, addr)) {
        if (inst.op == Op::kScW) {
          store<std::uint32_t>(addr, static_cast<std::uint32_t>(src), info);
        } else {
          store<std::uint64_t>(addr, src, info);
        }
        wr(0);  // success
      } else {
        wr(1);  // failure
      }
      return;
    }
    default:
      break;
  }

  // AMO*: old value -> rd, f(old, rs2) -> memory. Both the read and the
  // write are recorded so the cache model sees read-modify-write traffic.
  const bool is_w = inst.op == Op::kAmoswapW || inst.op == Op::kAmoaddW ||
                    inst.op == Op::kAmoxorW || inst.op == Op::kAmoandW ||
                    inst.op == Op::kAmoorW || inst.op == Op::kAmominW ||
                    inst.op == Op::kAmomaxW || inst.op == Op::kAmominuW ||
                    inst.op == Op::kAmomaxuW;
  std::uint64_t old_value;
  if (is_w) {
    old_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(
        static_cast<std::int32_t>(load<std::uint32_t>(addr, info))));
  } else {
    old_value = load<std::uint64_t>(addr, info);
  }

  std::uint64_t new_value = 0;
  const std::uint64_t operand =
      is_w ? static_cast<std::uint64_t>(static_cast<std::int64_t>(
                 static_cast<std::int32_t>(src)))
           : src;
  switch (inst.op) {
    case Op::kAmoswapW: case Op::kAmoswapD: new_value = operand; break;
    case Op::kAmoaddW: case Op::kAmoaddD:
      new_value = old_value + operand;
      break;
    case Op::kAmoxorW: case Op::kAmoxorD:
      new_value = old_value ^ operand;
      break;
    case Op::kAmoandW: case Op::kAmoandD:
      new_value = old_value & operand;
      break;
    case Op::kAmoorW: case Op::kAmoorD: new_value = old_value | operand; break;
    case Op::kAmominW: case Op::kAmominD:
      new_value = static_cast<std::int64_t>(old_value) <
                          static_cast<std::int64_t>(operand)
                      ? old_value : operand;
      break;
    case Op::kAmomaxW: case Op::kAmomaxD:
      new_value = static_cast<std::int64_t>(old_value) >
                          static_cast<std::int64_t>(operand)
                      ? old_value : operand;
      break;
    case Op::kAmominuW: case Op::kAmominuD:
      if (is_w) {
        new_value = static_cast<std::uint32_t>(old_value) <
                            static_cast<std::uint32_t>(operand)
                        ? old_value : operand;
      } else {
        new_value = old_value < operand ? old_value : operand;
      }
      break;
    case Op::kAmomaxuW: case Op::kAmomaxuD:
      if (is_w) {
        new_value = static_cast<std::uint32_t>(old_value) >
                            static_cast<std::uint32_t>(operand)
                        ? old_value : operand;
      } else {
        new_value = old_value > operand ? old_value : operand;
      }
      break;
    default:
      throw ExecutionError(strfmt("core %u: bad AMO", id_));
  }

  if (is_w) {
    store<std::uint32_t>(addr, static_cast<std::uint32_t>(new_value), info);
  } else {
    store<std::uint64_t>(addr, new_value, info);
  }
  wr(old_value);
}

}  // namespace coyote::iss
