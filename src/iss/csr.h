// The (small) CSR surface a baremetal HPC kernel touches.
#pragma once

#include <cstdint>

namespace coyote::iss::csr {

inline constexpr std::uint32_t kFflags = 0x001;
inline constexpr std::uint32_t kFrm = 0x002;
inline constexpr std::uint32_t kFcsr = 0x003;
inline constexpr std::uint32_t kCycle = 0xC00;
inline constexpr std::uint32_t kTime = 0xC01;
inline constexpr std::uint32_t kInstret = 0xC02;
inline constexpr std::uint32_t kVl = 0xC20;
inline constexpr std::uint32_t kVtype = 0xC21;
inline constexpr std::uint32_t kVlenb = 0xC22;
inline constexpr std::uint32_t kMstatus = 0x300;
inline constexpr std::uint32_t kMhartid = 0xF14;
inline constexpr std::uint32_t kMcycle = 0xB00;
inline constexpr std::uint32_t kMinstret = 0xB02;

/// Custom CSR: writing any value marks the start of the region of interest
/// (fast-forward mode stops here and cuts a checkpoint). Reads return 0 and
/// writes are architecturally invisible otherwise, so detailed simulation
/// treats it as a no-op.
inline constexpr std::uint32_t kRoiBegin = 0x800;

}  // namespace coyote::iss::csr
