// Spike-style fast-forward: execute instructions purely functionally (no
// timing, no stalls, no statistics) to skip initialization phases cheaply,
// optionally warming the caches and the coherence directory along the way,
// then hand over to detailed simulation — typically followed by a
// checkpoint cut so the expensive prefix never has to be re-simulated.
//
// Determinism: cores execute round-robin, one instruction each per round,
// so two fast-forwards of the same program reach the identical state. The
// run stops when every core has exhausted its per-core instruction budget
// (SimConfig::ffwd_instructions) or halted, or — when
// SimConfig::ffwd_stop_at_roi — immediately after any hart writes the
// roi_begin CSR (csr::kRoiBegin).
#pragma once

#include <cstdint>

#include "core/simulator.h"

namespace coyote::ckpt {

/// Outcome of one fast_forward() call.
struct FfwdResult {
  /// Instructions executed functionally, across all cores.
  std::uint64_t instructions = 0;
  /// A hart wrote the roi_begin CSR and ffwd_stop_at_roi was set.
  bool roi_reached = false;
  /// Every core ran to program exit during fast-forward.
  bool all_exited = false;
};

/// Fast-forwards `sim` per its config (ffwd_instructions per core,
/// ffwd_warmup, ffwd_stop_at_roi). Call after load_program and before the
/// first detailed run. No-op when ffwd_instructions == 0. Simulated time
/// does not advance; detailed simulation continues from cycle now().
FfwdResult fast_forward(core::Simulator& sim);

}  // namespace coyote::ckpt
