#include "ckpt/checkpoint.h"

#include <fstream>
#include <vector>

#include "common/binio.h"
#include "common/error.h"
#include "core/config_io.h"
#include "loader/workload.h"
#include "simfw/unit.h"

namespace coyote::ckpt {

namespace {

// ----- SimConfig <-> binary --------------------------------------------
// The complete typed config, field by field. The map surface (config_io)
// deliberately cannot express every field — capacities speak whole KiB,
// trace outputs are not knobs — so restore works from this serialization
// and the embedded map is provenance only.

void save_config(BinWriter& w, const core::SimConfig& c) {
  w.u32(c.num_cores);
  w.u32(c.cores_per_tile);
  w.u32(c.l2_banks_per_tile);
  // core (ISS + L1)
  w.u32(c.core.vector.vlen_bits);
  w.u64(c.core.l1d_size_bytes);
  w.u32(c.core.l1d_ways);
  w.u64(c.core.l1i_size_bytes);
  w.u32(c.core.l1i_ways);
  w.u32(c.core.line_bytes);
  w.u8(static_cast<std::uint8_t>(c.core.l1_replacement));
  w.b(c.core.model_l1);
  w.b(c.core.coherent);
  // L2
  w.u8(static_cast<std::uint8_t>(c.l2_sharing));
  w.u64(c.l2_bank.size_bytes);
  w.u32(c.l2_bank.ways);
  w.u32(c.l2_bank.line_bytes);
  w.u64(c.l2_bank.hit_latency);
  w.u64(c.l2_bank.miss_latency);
  w.u32(c.l2_bank.mshrs);
  w.u8(static_cast<std::uint8_t>(c.l2_bank.replacement));
  w.u8(static_cast<std::uint8_t>(c.l2_bank.prefetch));
  w.u32(c.l2_bank.prefetch_degree);
  w.u64(c.l2_bank.prefetch_stride_bytes);
  w.b(c.l2_bank.coherent);
  w.u32(c.l2_bank.num_cores);
  w.u32(c.l2_bank.cores_per_tile);
  w.u8(static_cast<std::uint8_t>(c.mapping));
  w.u8(static_cast<std::uint8_t>(c.coherence));
  // NoC + memory
  w.u8(static_cast<std::uint8_t>(c.noc.model));
  w.u64(c.noc.crossbar_latency);
  w.u64(c.noc.mesh_router_latency);
  w.u64(c.noc.mesh_hop_latency);
  w.u32(c.noc.mesh_width);
  if (c.noc.model == memhier::NocModel::kMesh2D) {
    // Contended-mesh knobs, gated on the model byte so crossbar and
    // mesh-oracle checkpoints keep their exact v3 byte layout.
    w.u32(c.noc.mesh_height);
    w.u64(c.noc.link_bandwidth);
    w.u32(c.noc.buffer_flits);
    w.u32(c.noc.flit_bytes);
  }
  w.u32(c.num_mcs);
  w.u8(static_cast<std::uint8_t>(c.mc.model));
  w.u64(c.mc.latency);
  w.u64(c.mc.cycles_per_request);
  w.u32(c.mc.dram_banks);
  w.u64(c.mc.row_bytes);
  w.u64(c.mc.row_hit_latency);
  w.u64(c.mc.row_miss_latency);
  w.u32(c.mc_interleave_bytes);
  w.b(c.llc.enable);
  w.u64(c.llc.size_bytes);
  w.u32(c.llc.ways);
  w.u32(c.llc.line_bytes);
  w.u64(c.llc.hit_latency);
  w.u64(c.llc.miss_latency);
  w.u8(static_cast<std::uint8_t>(c.llc.replacement));
  // orchestration
  w.u32(c.interleave_quantum);
  w.b(c.fast_forward_idle);
  w.b(c.batched_stepping);
  w.u64(c.ffwd_instructions);
  w.b(c.ffwd_warmup);
  w.b(c.ffwd_stop_at_roi);
  w.u64(c.ffwd_warmup_window);
  // workload (v3)
  w.str(c.workload.kernel);
  w.str(c.workload.elf);
  w.u64(c.workload.size);
  w.u64(c.workload.seed);
  // robustness (v2)
  w.u64(c.watchdog_cycles);
  w.b(c.fault.enable);
  w.u64(c.fault.seed);
  w.u32(c.fault.count);
  w.str(c.fault.targets);
  w.u64(c.fault.window_begin);
  w.u64(c.fault.window_end);
  w.u32(c.fault.noc_retries);
  w.u64(c.fault.noc_timeout);
  w.u64(c.fault.mc_stall_cycles);
  // outputs
  w.b(c.enable_trace);
  w.str(c.trace_basename);
}

core::SimConfig load_config(BinReader& r) {
  core::SimConfig c;
  c.num_cores = r.u32();
  c.cores_per_tile = r.u32();
  c.l2_banks_per_tile = r.u32();
  c.core.vector.vlen_bits = r.u32();
  c.core.l1d_size_bytes = r.u64();
  c.core.l1d_ways = r.u32();
  c.core.l1i_size_bytes = r.u64();
  c.core.l1i_ways = r.u32();
  c.core.line_bytes = r.u32();
  c.core.l1_replacement = static_cast<memhier::Replacement>(r.u8());
  c.core.model_l1 = r.b();
  c.core.coherent = r.b();
  c.l2_sharing = static_cast<core::L2Sharing>(r.u8());
  c.l2_bank.size_bytes = r.u64();
  c.l2_bank.ways = r.u32();
  c.l2_bank.line_bytes = r.u32();
  c.l2_bank.hit_latency = r.u64();
  c.l2_bank.miss_latency = r.u64();
  c.l2_bank.mshrs = r.u32();
  c.l2_bank.replacement = static_cast<memhier::Replacement>(r.u8());
  c.l2_bank.prefetch = static_cast<memhier::PrefetchPolicy>(r.u8());
  c.l2_bank.prefetch_degree = r.u32();
  c.l2_bank.prefetch_stride_bytes = r.u64();
  c.l2_bank.coherent = r.b();
  c.l2_bank.num_cores = r.u32();
  c.l2_bank.cores_per_tile = r.u32();
  c.mapping = static_cast<memhier::MappingPolicy>(r.u8());
  c.coherence = static_cast<core::Coherence>(r.u8());
  c.noc.model = static_cast<memhier::NocModel>(r.u8());
  c.noc.crossbar_latency = r.u64();
  c.noc.mesh_router_latency = r.u64();
  c.noc.mesh_hop_latency = r.u64();
  c.noc.mesh_width = r.u32();
  if (c.noc.model == memhier::NocModel::kMesh2D) {
    c.noc.mesh_height = r.u32();
    c.noc.link_bandwidth = r.u64();
    c.noc.buffer_flits = r.u32();
    c.noc.flit_bytes = r.u32();
  }
  c.num_mcs = r.u32();
  c.mc.model = static_cast<memhier::McModel>(r.u8());
  c.mc.latency = r.u64();
  c.mc.cycles_per_request = r.u64();
  c.mc.dram_banks = r.u32();
  c.mc.row_bytes = r.u64();
  c.mc.row_hit_latency = r.u64();
  c.mc.row_miss_latency = r.u64();
  c.mc_interleave_bytes = r.u32();
  c.llc.enable = r.b();
  c.llc.size_bytes = r.u64();
  c.llc.ways = r.u32();
  c.llc.line_bytes = r.u32();
  c.llc.hit_latency = r.u64();
  c.llc.miss_latency = r.u64();
  c.llc.replacement = static_cast<memhier::Replacement>(r.u8());
  c.interleave_quantum = r.u32();
  c.fast_forward_idle = r.b();
  c.batched_stepping = r.b();
  c.ffwd_instructions = r.u64();
  c.ffwd_warmup = r.b();
  c.ffwd_stop_at_roi = r.b();
  c.ffwd_warmup_window = r.u64();
  c.workload.kernel = r.str();
  c.workload.elf = r.str();
  c.workload.size = r.u64();
  c.workload.seed = r.u64();
  c.watchdog_cycles = r.u64();
  c.fault.enable = r.b();
  c.fault.seed = r.u64();
  c.fault.count = r.u32();
  c.fault.targets = r.str();
  c.fault.window_begin = r.u64();
  c.fault.window_end = r.u64();
  c.fault.noc_retries = r.u32();
  c.fault.noc_timeout = r.u64();
  c.fault.mc_stall_cycles = r.u64();
  c.enable_trace = r.b();
  c.trace_basename = r.str();
  return c;
}

// ----- statistics tree --------------------------------------------------
// Generic walk over the Unit tree by pre-order position, with path and
// counter names cross-checked on load: an identically-configured machine
// builds an identical tree, so any mismatch means the checkpoint does not
// belong to this config. StatisticDefs are report-time closures over live
// state and carry no state of their own.

void save_stats(BinWriter& w, const simfw::Unit& root) {
  std::uint64_t num_units = 0;
  root.for_each([&num_units](const simfw::Unit&) { ++num_units; });
  w.u64(num_units);
  root.for_each([&w](const simfw::Unit& unit) {
    w.str(unit.path());
    const simfw::StatisticSet& stats = unit.stats();
    w.u64(stats.counters().size());
    for (const auto& counter : stats.counters()) {
      w.str(counter->name());
      w.u64(counter->get());
    }
    w.u64(stats.distributions().size());
    for (const auto& dist : stats.distributions()) {
      w.str(dist->name());
      w.u64(dist->count());
      w.u64(dist->sum());
      w.u64(dist->raw_min());
      w.u64(dist->max());
      for (unsigned i = 0; i < simfw::DistributionStat::kBuckets; ++i) {
        w.u64(dist->bucket(i));
      }
    }
  });
}

void load_stats(BinReader& r, simfw::Unit& root) {
  std::vector<simfw::Unit*> units;
  root.for_each([&units](simfw::Unit& unit) { units.push_back(&unit); });
  if (r.u64() != units.size()) {
    throw SimError("checkpoint: statistics tree shape mismatch");
  }
  for (simfw::Unit* unit : units) {
    if (r.str() != unit->path()) {
      throw SimError(strfmt("checkpoint: statistics unit mismatch at '%s'",
                            unit->path().c_str()));
    }
    const simfw::StatisticSet& stats = unit->stats();
    if (r.u64() != stats.counters().size()) {
      throw SimError(strfmt("checkpoint: counter set mismatch in '%s'",
                            unit->path().c_str()));
    }
    for (const auto& counter : stats.counters()) {
      if (r.str() != counter->name()) {
        throw SimError(strfmt("checkpoint: counter name mismatch in '%s'",
                              unit->path().c_str()));
      }
      counter->set(r.u64());
    }
    if (r.u64() != stats.distributions().size()) {
      throw SimError(strfmt("checkpoint: distribution set mismatch in '%s'",
                            unit->path().c_str()));
    }
    for (const auto& dist : stats.distributions()) {
      if (r.str() != dist->name()) {
        throw SimError(strfmt("checkpoint: distribution name mismatch in '%s'",
                              unit->path().c_str()));
      }
      const std::uint64_t count = r.u64();
      const std::uint64_t sum = r.u64();
      const std::uint64_t min = r.u64();
      const std::uint64_t max = r.u64();
      std::uint64_t buckets[simfw::DistributionStat::kBuckets];
      for (auto& bucket : buckets) bucket = r.u64();
      dist->restore(count, sum, min, max, buckets);
    }
  }
}

void save_meta(BinWriter& w, const CheckpointMeta& meta) {
  w.u32(kCheckpointMagic);
  w.u32(meta.version);
  w.str(meta.workload);
  w.str(meta.workload_kind);
  w.str(meta.workload_ref);
  w.u64(meta.workload_hash);
  w.u64(meta.config.values().size());
  for (const auto& [key, value] : meta.config.values()) {
    w.str(key);
    w.str(value);
  }
  w.u64(meta.cycle);
}

CheckpointMeta load_meta(BinReader& r) {
  if (r.u32() != kCheckpointMagic) {
    throw SimError("checkpoint: bad magic (not a Coyote checkpoint)");
  }
  CheckpointMeta meta;
  meta.version = r.u32();
  if (meta.version != kCheckpointVersion) {
    throw SimError(strfmt("checkpoint: format version %u, this build reads %u",
                          meta.version, kCheckpointVersion));
  }
  meta.workload = r.str();
  meta.workload_kind = r.str();
  meta.workload_ref = r.str();
  meta.workload_hash = r.u64();
  const std::uint64_t num_keys = r.count(1 << 20);
  for (std::uint64_t i = 0; i < num_keys; ++i) {
    const std::string key = r.str();
    meta.config.set(key, r.str());
  }
  meta.cycle = r.u64();
  return meta;
}

}  // namespace

void write_checkpoint(core::Simulator& sim, const core::WorkloadInfo& workload,
                      std::ostream& os) {
  if (sim.scheduler().has_pending()) {
    throw SimError(
        "checkpoint: events pending — checkpoints may only be cut at a "
        "quiesce point (use Simulator::run_to_quiesce)");
  }
  BinWriter w(os);

  CheckpointMeta meta;
  meta.workload = workload.label;
  meta.workload_kind = workload.kind;
  meta.workload_ref = workload.ref;
  meta.workload_hash = workload.content_hash;
  meta.config = core::config_to_map(sim.config());
  meta.cycle = sim.scheduler().now();
  save_meta(w, meta);

  save_config(w, sim.config());

  // Scheduler clock: position, tie-break sequence and the fired count, so
  // the restored queue continues with identical intra-cycle ordering.
  w.u64(sim.scheduler().now());
  w.u64(sim.scheduler().next_sequence());
  w.u64(sim.scheduler().events_fired());

  sim.memory().save_state(w);
  for (CoreId id = 0; id < sim.num_cores(); ++id) {
    sim.core(id).save_state(w);
  }
  for (BankId bank = 0; bank < sim.num_l2_banks(); ++bank) {
    sim.l2_bank(bank).save_state(w);
  }
  for (McId mc = 0; mc < sim.config().num_mcs; ++mc) {
    sim.mc(mc).save_state(w);
    if (memhier::LlcSlice* llc = sim.llc(mc)) llc->save_state(w);
  }
  sim.orchestrator().save_state(w);

  // Contended-mesh router state (quiesce guarantees no messages in flight;
  // what remains is link pacing: next-free cycles and round-robin pointers).
  // Gated on the model so crossbar/oracle files keep their v3 layout.
  if (sim.config().noc.model == memhier::NocModel::kMesh2D) {
    sim.noc().save_state(w);
  }

  // Proxy-kernel emulator state (v3): presence flag + brk/layout payload.
  // Restore reattaches the emulator from this flag alone, so checkpoints
  // stay self-contained even when workload config and machine state were
  // wired up by hand (tests, embedders).
  const iss::SyscallEmulatorIf* emulator = sim.syscall_emulator();
  w.b(emulator != nullptr);
  if (emulator != nullptr) emulator->save_state(w);

  save_stats(w, sim.root());

  w.b(sim.trace() != nullptr);
  if (sim.trace() != nullptr) sim.trace()->save_state(w);

  // Integrity footer: CRC-32 of every byte above. Restore recomputes it and
  // rejects truncated or bit-flipped files with the failing offset instead
  // of restoring garbage.
  w.u32(w.crc());
  os.flush();
  if (!os) throw SimError("checkpoint: write failed");
}

void write_checkpoint_file(core::Simulator& sim,
                           const core::WorkloadInfo& workload,
                           const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw SimError("checkpoint: cannot open " + path);
  write_checkpoint(sim, workload, os);
}

void write_checkpoint(core::Simulator& sim, const std::string& workload,
                      std::ostream& os) {
  write_checkpoint(sim, core::WorkloadInfo::from_label(workload), os);
}

void write_checkpoint_file(core::Simulator& sim, const std::string& workload,
                           const std::string& path) {
  write_checkpoint_file(sim, core::WorkloadInfo::from_label(workload), path);
}

CheckpointMeta read_checkpoint_meta(std::istream& is) {
  BinReader r(is);
  return load_meta(r);
}

CheckpointMeta read_checkpoint_meta_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SimError("checkpoint: cannot open " + path);
  return read_checkpoint_meta(is);
}

std::unique_ptr<core::Simulator> restore_checkpoint(std::istream& is,
                                                    CheckpointMeta* meta_out) {
  BinReader r(is);
  CheckpointMeta meta = load_meta(r);
  const core::SimConfig config = load_config(r);

  auto sim = std::make_unique<core::Simulator>(config);

  const Cycle now = r.u64();
  const std::uint64_t next_sequence = r.u64();
  const std::uint64_t events_fired = r.u64();
  sim->scheduler().restore_clock(now, next_sequence, events_fired);

  sim->memory().load_state(r);
  for (CoreId id = 0; id < sim->num_cores(); ++id) {
    sim->core(id).load_state(r);
  }
  for (BankId bank = 0; bank < sim->num_l2_banks(); ++bank) {
    sim->l2_bank(bank).load_state(r);
  }
  for (McId mc = 0; mc < sim->config().num_mcs; ++mc) {
    sim->mc(mc).load_state(r);
    if (memhier::LlcSlice* llc = sim->llc(mc)) llc->load_state(r);
  }
  sim->orchestrator().load_state(r);

  if (sim->config().noc.model == memhier::NocModel::kMesh2D) {
    sim->noc().load_state(r);
  }

  const bool has_emulator = r.b();
  if (has_emulator) {
    loader::attach_proxy_kernel(*sim);
    sim->syscall_emulator()->load_state(r);
  }

  load_stats(r, sim->root());

  const bool has_trace = r.b();
  if (has_trace != (sim->trace() != nullptr)) {
    throw SimError("checkpoint: trace-presence mismatch");
  }
  if (has_trace) sim->trace()->load_state(r);

  // Integrity footer: the payload CRC must match the stored one. Reading
  // the footer itself would fold it into r.crc(), so capture first.
  const std::uint32_t computed = r.crc();
  const std::uint64_t footer_offset = r.offset();
  const std::uint32_t stored = r.u32();
  if (computed != stored) {
    throw SimError(strfmt(
        "checkpoint: CRC mismatch at offset %llu (stored 0x%08x, computed "
        "0x%08x) — the file is corrupt",
        static_cast<unsigned long long>(footer_offset), stored, computed));
  }

  if (meta_out != nullptr) *meta_out = std::move(meta);
  return sim;
}

std::unique_ptr<core::Simulator> restore_checkpoint_file(
    const std::string& path, CheckpointMeta* meta_out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SimError("checkpoint: cannot open " + path);
  return restore_checkpoint(is, meta_out);
}

}  // namespace coyote::ckpt
