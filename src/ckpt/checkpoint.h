// Checkpoint / restore of complete simulator state (the tentpole of the
// sampling subsystem). A checkpoint is a versioned little-endian binary
// image of everything a run needs to continue bit-identically: the full
// SimConfig, the scheduler clock, every hart's architectural state, the
// sparse memory pages and LR/SC reservations, all cache tag arrays and
// replacement state (L1 I/D, L2 banks, LLC slices), the MESI directory
// records, the memory controllers' open-row / bandwidth state, the entire
// statistics tree and — when tracing — the buffered Paraver records.
//
// Quiesce invariant: checkpoints are only cut at quiesce points (see
// Simulator::run_to_quiesce) where the event queue is empty and nothing is
// in flight anywhere. Event callbacks therefore never need serializing, and
// every component's transient bookkeeping (MSHRs, probe transactions, RAW
// scoreboards) is empty by construction. write_checkpoint throws SimError
// if the invariant does not hold.
//
// Bit-identity guarantee: restore_checkpoint(write_checkpoint(S)) yields a
// simulator whose continuation is cycle-, statistics- and trace-identical
// to letting S run on uninterrupted.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "common/types.h"
#include "core/simulator.h"
#include "core/workload_info.h"
#include "simfw/params.h"

namespace coyote::ckpt {

/// File magic: the bytes "PKYC" when the leading u32 is read little-endian.
inline constexpr std::uint32_t kCheckpointMagic = 0x43594B50;
/// Format version. Bumped on any layout change; readers reject mismatches.
/// v2: watchdog/fault config fields + trailing CRC-32 integrity footer.
/// v3: workload-source metadata (kind/ref/content hash), workload.* config
///     fields, per-hart tohost addresses and proxy-kernel emulator state.
inline constexpr std::uint32_t kCheckpointVersion = 3;

/// The checkpoint header, readable without reconstructing the simulator
/// (sweep resume matches points against `config` before restoring).
struct CheckpointMeta {
  std::uint32_t version = kCheckpointVersion;
  /// Free-form workload label (e.g. the kernel spec that was loaded).
  std::string workload;
  /// Workload source identity (v3): "kernel" / "elf" / "asm", the name or
  /// path it came from, and — for ELF images — the FNV-1a 64 hash of the
  /// binary, so a restore against a rebuilt binary can be refused.
  std::string workload_kind = "kernel";
  std::string workload_ref;
  std::uint64_t workload_hash = 0;
  /// The normalised config map (config_to_map of the captured SimConfig),
  /// embedded for provenance and sweep-point matching. Restore does NOT
  /// rebuild the config from this map — the map surface cannot express
  /// every SimConfig field — but from a complete binary serialization that
  /// follows it in the stream.
  simfw::ConfigMap config;
  /// Simulated cycle at which the checkpoint was cut.
  Cycle cycle = 0;
};

/// Serializes `sim` at its current (quiesced) state. Throws SimError if any
/// event is pending or any component has in-flight work, and
/// std::runtime_error on stream failure.
void write_checkpoint(core::Simulator& sim, const core::WorkloadInfo& workload,
                      std::ostream& os);
void write_checkpoint_file(core::Simulator& sim,
                           const core::WorkloadInfo& workload,
                           const std::string& path);
/// Label-only conveniences (kind/ref derived via WorkloadInfo::from_label).
void write_checkpoint(core::Simulator& sim, const std::string& workload,
                      std::ostream& os);
void write_checkpoint_file(core::Simulator& sim, const std::string& workload,
                           const std::string& path);

/// Reads only the header (magic, version, workload, config map, cycle).
CheckpointMeta read_checkpoint_meta(std::istream& is);
CheckpointMeta read_checkpoint_meta_file(const std::string& path);

/// Reconstructs a simulator from a checkpoint: builds a fresh machine from
/// the serialized SimConfig, then loads every component's state and the
/// scheduler clock. The returned simulator continues bit-identically to the
/// one that was checkpointed. Throws SimError / std::runtime_error on
/// corrupt, truncated or version-mismatched input.
std::unique_ptr<core::Simulator> restore_checkpoint(
    std::istream& is, CheckpointMeta* meta_out = nullptr);
std::unique_ptr<core::Simulator> restore_checkpoint_file(
    const std::string& path, CheckpointMeta* meta_out = nullptr);

}  // namespace coyote::ckpt
