#include "ckpt/fastforward.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "memhier/cache_array.h"
#include "memhier/directory.h"

namespace coyote::ckpt {

namespace {

// Functional cache / directory warm-up. Lines are installed straight into
// the tag arrays (and owner/sharer records straight into the directory),
// bypassing the timing model and the probe/ack machinery, so no latency is
// charged and no counter — core, bank or coherence — moves. The states
// written are protocol-consistent (one M/E owner, directory sharers cover
// every holder) but deliberately approximate: warm-up trades the detailed
// model's exact replacement/state history for functional-mode speed.
class Warmer {
 public:
  explicit Warmer(core::Simulator& sim)
      : sim_(sim),
        last_iline_(sim.num_cores(), ~Addr{0}),
        coherent_(sim.config().coherence == core::Coherence::kMesi),
        model_l1_(sim.config().core.model_l1) {}

  void touch(CoreId core, const iss::StepInfo& info) {
    if (!model_l1_) return;  // pure-functional cores: no hierarchy to warm
    // Straight-line code stays inside one I-line for many instructions;
    // remembering the last line fetched skips the array lookup for all of
    // them. Exact, not approximate: only this core inserts into its own
    // L1I and nothing else probes it, so a line fetched twice in a row
    // cannot have been evicted in between.
    const Addr iline = sim_.core(core).l1i_array().line_of(info.pc);
    if (iline != last_iline_[core]) {
      last_iline_[core] = iline;
      touch_ifetch(core, info.pc);
    }
    for (const iss::MemAccess& access : info.accesses) {
      // An access may straddle a line boundary; touch every line it covers.
      iss::CoreModel& owner = sim_.core(core);
      const Addr first = owner.l1d_array().line_of(access.addr);
      const Addr last = owner.l1d_array().line_of(
          access.addr + (access.size ? access.size - 1 : 0));
      const std::uint32_t line_bytes = owner.l1d_array().line_bytes();
      for (Addr line = first; line <= last; line += line_bytes) {
        touch_data(core, line, access.is_store);
      }
    }
  }

 private:
  void touch_ifetch(CoreId core, Addr pc) {
    memhier::CacheArray& l1i = sim_.core(core).l1i_array();
    const Addr line = l1i.line_of(pc);
    if (l1i.lookup(line)) return;
    l1i.insert(line, /*dirty=*/false);  // I-lines are never dirty
    warm_outer(core, line, /*dirty=*/false);
  }

  void touch_data(CoreId core, Addr line, bool is_store) {
    memhier::CacheArray& l1d = sim_.core(core).l1d_array();
    if (l1d.lookup(line)) {
      if (!is_store) return;
      if (!coherent_) {
        l1d.mark_dirty(line);
        return;
      }
      switch (l1d.coh_state(line)) {
        case memhier::CohState::kModified:
          l1d.mark_dirty(line);
          return;
        case memhier::CohState::kExclusive:
          // Silent E -> M upgrade, exactly as the detailed model does.
          l1d.set_coh_state(line, memhier::CohState::kModified);
          l1d.mark_dirty(line);
          return;
        default: {
          // S -> M upgrade: invalidate the other sharers.
          invalidate_others(core, line);
          l1d.set_coh_state(line, memhier::CohState::kModified);
          l1d.mark_dirty(line);
          if (memhier::Directory* dir = directory_of(core, line)) {
            dir->restore_entry(line, core, 0);
          }
          return;
        }
      }
    }

    // L1D miss.
    if (!coherent_) {
      install(core, line, is_store, memhier::CohState::kInvalid);
      warm_outer(core, line, /*dirty=*/false);
      return;
    }
    if (is_store) {
      invalidate_others(core, line);
      install(core, line, /*dirty=*/true, memhier::CohState::kModified);
      if (memhier::Directory* dir = directory_of(core, line)) {
        dir->restore_entry(line, core, 0);
      }
    } else {
      std::uint64_t holders = demote_others(core, line);
      const bool shared = holders != 0;
      install(core, line, /*dirty=*/false,
              shared ? memhier::CohState::kShared
                     : memhier::CohState::kExclusive);
      if (memhier::Directory* dir = directory_of(core, line)) {
        if (shared) {
          dir->restore_entry(line, kInvalidCore,
                             holders | (std::uint64_t{1} << core));
        } else {
          dir->restore_entry(line, core, 0);
        }
      }
    }
    warm_outer(core, line, /*dirty=*/false);
  }

  /// Inserts into `core`'s L1D; a displaced dirty victim is written back
  /// functionally (bank line dirtied, directory ownership cleared). Clean
  /// victims leave silently, as in the detailed model.
  void install(CoreId core, Addr line, bool dirty, memhier::CohState state) {
    const auto evicted = sim_.core(core).l1d_array().insert(line, dirty, state);
    if (!evicted.valid || !evicted.dirty) return;
    memhier::CacheArray& bank = bank_of(core, evicted.line_addr).array();
    if (!bank.mark_dirty(evicted.line_addr)) {
      bank.insert(evicted.line_addr, /*dirty=*/true);
    }
    if (memhier::Directory* dir = directory_of(core, evicted.line_addr)) {
      dir->on_writeback(evicted.line_addr, core);
    }
  }

  /// Bitmask of cores (other than `core`) the directory records as holding
  /// `line`. The directory over-approximates — silent clean evictions leave
  /// stale records — but never misses a real holder (every L1D copy was
  /// installed through it, in the detailed model and in this warmer alike),
  /// so probing only recorded holders is exact and turns the per-miss cost
  /// from O(cores) into O(actual sharers).
  std::uint64_t recorded_holders(CoreId core, Addr line) {
    const memhier::Directory* dir = directory_of(core, line);
    if (dir == nullptr) return 0;
    std::uint64_t mask = dir->sharer_mask(line);
    const CoreId owner = dir->owner_of(line);
    if (owner != kInvalidCore) mask |= std::uint64_t{1} << owner;
    return mask & ~(std::uint64_t{1} << core);
  }

  /// Invalidates every other recorded L1D copy of `line` (GetM semantics).
  void invalidate_others(CoreId core, Addr line) {
    std::uint64_t mask = recorded_holders(core, line);
    while (mask != 0) {
      const CoreId other = static_cast<CoreId>(std::countr_zero(mask));
      mask &= mask - 1;
      sim_.core(other).l1d_array().invalidate(line);
    }
  }

  /// Demotes every other recorded M/E holder to S (GetS semantics).
  /// Returns the bitmask of cores left holding the line in S.
  std::uint64_t demote_others(CoreId core, Addr line) {
    std::uint64_t holders = 0;
    std::uint64_t mask = recorded_holders(core, line);
    while (mask != 0) {
      const CoreId other = static_cast<CoreId>(std::countr_zero(mask));
      mask &= mask - 1;
      memhier::CacheArray& l1d = sim_.core(other).l1d_array();
      if (!l1d.probe(line)) continue;  // stale record: silently evicted
      if (l1d.downgrade(line)) {
        // The demoted copy was dirty: its data reaches the L2 with the ack.
        memhier::CacheArray& bank = bank_of(core, line).array();
        if (!bank.mark_dirty(line)) bank.insert(line, /*dirty=*/true);
      }
      holders |= std::uint64_t{1} << other;
    }
    return holders;
  }

  /// Installs `line` into the owning L2 bank and LLC slice if absent
  /// (clean; displaced lines are dropped — data is functional in
  /// SparseMemory, so nothing is lost).
  void warm_outer(CoreId core, Addr line, bool dirty) {
    memhier::CacheArray& bank = bank_of(core, line).array();
    if (!bank.lookup(line)) {
      bank.insert(line, dirty);
      if (memhier::LlcSlice* llc = sim_.llc(sim_.mc_mapper().mc_of(line))) {
        if (!llc->array().lookup(line)) llc->array().insert(line, false);
      }
    } else if (dirty) {
      bank.mark_dirty(line);
    }
  }

  memhier::L2Bank& bank_of(CoreId core, Addr line) {
    return sim_.l2_bank(sim_.orchestrator().bank_for(core, line));
  }
  memhier::Directory* directory_of(CoreId core, Addr line) {
    return bank_of(core, line).directory_mut();
  }

  core::Simulator& sim_;
  std::vector<Addr> last_iline_;  ///< last I-line fetched, per core
  bool coherent_;
  bool model_l1_;
};

}  // namespace

// Cores rotate every kFfwdQuantum instructions, not every instruction.
// No simulated time passes in fast-forward, so the quantum only picks one
// fixed (hence deterministic) functional interleaving among the valid
// ones — exactly Spike's scheme, which runs each hart for a multi-thousand
// instruction quantum. The win is host locality: one hart's state stays
// resident instead of 64 harts thrashing the host caches every round.
constexpr std::uint64_t kFfwdQuantum = 1024;

FfwdResult fast_forward(core::Simulator& sim) {
  FfwdResult result;
  const core::SimConfig& config = sim.config();
  if (config.ffwd_instructions == 0) return result;

  Warmer warmer(sim);
  const std::uint32_t num_cores = sim.num_cores();
  // The warmer installs and invalidates L1 lines directly (any core's, for
  // coherence), bypassing the cores' step/fill paths — drop every held
  // tag-array handle before the first direct mutation.
  for (CoreId id = 0; id < num_cores; ++id) sim.core(id).flush_host_refs();
  const Cycle now = sim.scheduler().now();
  std::vector<std::uint64_t> executed(num_cores, 0);

  // SMARTS-style functional-warming window: instructions before warm_from
  // are executed without touching the cache arrays at all. 0 = warm the
  // whole skip (also when the window exceeds the budget).
  const std::uint64_t window = config.ffwd_warmup_window;
  const std::uint64_t warm_from =
      (window != 0 && window < config.ffwd_instructions)
          ? config.ffwd_instructions - window
          : 0;

  const bool warm = config.ffwd_warmup;
  const bool stop_at_roi = config.ffwd_stop_at_roi;
  bool progress = true;
  while (progress && !result.roi_reached) {
    progress = false;
    for (CoreId id = 0; id < num_cores && !result.roi_reached; ++id) {
      iss::CoreModel& core = sim.core(id);
      if (core.halted()) continue;
      std::uint64_t done = executed[id];
      const std::uint64_t until =
          std::min(config.ffwd_instructions, done + kFfwdQuantum);

      // Below the warming window nothing is reported per instruction, so
      // the whole stretch runs in CoreModel's tight batch loop.
      const std::uint64_t batch_until = warm ? std::min(until, warm_from)
                                             : until;
      if (done < batch_until) {
        done += core.ffwd_run(batch_until - done, now, stop_at_roi);
        if (core.halted()) {
          sim.orchestrator().record_ffwd_exit(id,
                                              core.last_ffwd_info().exit_code);
        } else if (stop_at_roi && core.hart().roi_marker()) {
          result.roi_reached = true;
        }
      }

      // Inside the window: step one at a time and warm after every
      // instruction.
      while (done < until && !core.halted() && !result.roi_reached) {
        const iss::StepInfo* info = core.ffwd_step(now);
        if (info == nullptr) break;
        ++done;
        warmer.touch(id, *info);
        if (core.halted()) {
          sim.orchestrator().record_ffwd_exit(id, info->exit_code);
          break;
        }
        if (stop_at_roi && core.hart().roi_marker()) {
          result.roi_reached = true;
          break;
        }
      }
      result.instructions += done - executed[id];
      if (done != executed[id]) progress = true;
      executed[id] = done;
    }
  }

  result.all_exited = true;
  for (CoreId id = 0; id < num_cores; ++id) {
    if (!sim.core(id).halted()) result.all_exited = false;
  }
  return result;
}

}  // namespace coyote::ckpt
