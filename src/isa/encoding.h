// Raw instruction-word construction for every supported format. These free
// functions are the inverse of the decoder and are exercised against it by
// round-trip property tests.
#pragma once

#include <cstdint>

#include "common/bits.h"

namespace coyote::isa::encode {

inline std::uint32_t r_type(std::uint32_t opcode, std::uint32_t funct3,
                            std::uint32_t funct7, std::uint32_t rd,
                            std::uint32_t rs1, std::uint32_t rs2) {
  return opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) |
         (funct7 << 25);
}

inline std::uint32_t i_type(std::uint32_t opcode, std::uint32_t funct3,
                            std::uint32_t rd, std::uint32_t rs1,
                            std::int32_t imm) {
  return opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) |
         (static_cast<std::uint32_t>(imm & 0xFFF) << 20);
}

inline std::uint32_t s_type(std::uint32_t opcode, std::uint32_t funct3,
                            std::uint32_t rs1, std::uint32_t rs2,
                            std::int32_t imm) {
  const auto uimm = static_cast<std::uint32_t>(imm & 0xFFF);
  return opcode | ((uimm & 0x1F) << 7) | (funct3 << 12) | (rs1 << 15) |
         (rs2 << 20) | ((uimm >> 5) << 25);
}

inline std::uint32_t b_type(std::uint32_t opcode, std::uint32_t funct3,
                            std::uint32_t rs1, std::uint32_t rs2,
                            std::int32_t offset) {
  const auto uoff = static_cast<std::uint32_t>(offset);
  std::uint32_t w = opcode | (funct3 << 12) | (rs1 << 15) | (rs2 << 20);
  w |= ((uoff >> 11) & 0x1) << 7;
  w |= ((uoff >> 1) & 0xF) << 8;
  w |= ((uoff >> 5) & 0x3F) << 25;
  w |= ((uoff >> 12) & 0x1) << 31;
  return w;
}

inline std::uint32_t u_type(std::uint32_t opcode, std::uint32_t rd,
                            std::uint32_t imm20) {
  return opcode | (rd << 7) | ((imm20 & 0xFFFFF) << 12);
}

inline std::uint32_t j_type(std::uint32_t opcode, std::uint32_t rd,
                            std::int32_t offset) {
  const auto uoff = static_cast<std::uint32_t>(offset);
  std::uint32_t w = opcode | (rd << 7);
  w |= ((uoff >> 12) & 0xFF) << 12;
  w |= ((uoff >> 11) & 0x1) << 20;
  w |= ((uoff >> 1) & 0x3FF) << 21;
  w |= ((uoff >> 20) & 0x1) << 31;
  return w;
}

/// Vector arithmetic (OP-V major opcode 0x57).
inline std::uint32_t v_arith(std::uint32_t funct6, bool vm,
                             std::uint32_t vs2, std::uint32_t vs1_rs1_imm,
                             std::uint32_t funct3, std::uint32_t vd) {
  return 0x57 | (vd << 7) | (funct3 << 12) | ((vs1_rs1_imm & 0x1F) << 15) |
         (vs2 << 20) | (static_cast<std::uint32_t>(vm) << 25) |
         (funct6 << 26);
}

/// Vector memory (LOAD-FP 0x07 / STORE-FP 0x27). `mop`: 0 unit-stride,
/// 1 indexed-unordered, 2 strided. `width`: funct3 width code.
inline std::uint32_t v_mem(std::uint32_t opcode, std::uint32_t width,
                           std::uint32_t mop, bool vm, std::uint32_t rs2_vs2,
                           std::uint32_t rs1, std::uint32_t vd_vs3) {
  return opcode | (vd_vs3 << 7) | (width << 12) | (rs1 << 15) |
         (rs2_vs2 << 20) | (static_cast<std::uint32_t>(vm) << 25) |
         (mop << 26);
}

/// vtype immediate for vsetvli: e8/e16/e32/e64 as sew code 0..3,
/// m1..m8 as lmul code 0..3 (fractional LMUL unsupported).
inline std::uint32_t vtype_imm(std::uint32_t sew_code, std::uint32_t lmul_code,
                               bool ta = true, bool ma = true) {
  return (lmul_code & 0x7) | ((sew_code & 0x7) << 3) |
         (static_cast<std::uint32_t>(ta) << 6) |
         (static_cast<std::uint32_t>(ma) << 7);
}

}  // namespace coyote::isa::encode
