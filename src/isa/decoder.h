// Machine-word -> DecodedInst translation for the supported RV64IMFD+V
// subset. Unknown words decode to Op::kIllegal (the executor raises the
// fault; the decoder itself is total).
#pragma once

#include <cstdint>

#include "isa/inst.h"

namespace coyote::isa {

/// Decodes one 32-bit instruction word.
DecodedInst decode(std::uint32_t word);

}  // namespace coyote::isa
