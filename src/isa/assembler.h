// Programmatic RISC-V assembler. Coyote runs baremetal kernels; since no
// cross-toolchain is assumed to exist on the host, kernels are emitted as
// genuine RV64 machine code through this API and decoded/executed by the ISS
// exactly as toolchain-produced code would be.
//
// Supports forward/backward labels with automatic branch/jump fixups, the
// usual pseudo-instructions (li/mv/nop/j/ret/...), and the vector subset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "isa/encoding.h"
#include "isa/registers.h"

namespace coyote::isa {

/// Element width selector for vsetvli and vector loads/stores.
enum class Sew : std::uint8_t { kE8 = 0, kE16 = 1, kE32 = 2, kE64 = 3 };
/// Register-group multiplier (integral LMUL only).
enum class Lmul : std::uint8_t { kM1 = 0, kM2 = 1, kM4 = 2, kM8 = 3 };

class Assembler {
 public:
  /// A position in the program, resolvable after `bind`.
  class Label {
   public:
    Label() = default;

   private:
    friend class Assembler;
    explicit Label(std::uint32_t id) : id_(id) {}
    std::uint32_t id_ = ~std::uint32_t{0};
  };

  /// `base` is the address the first emitted word will live at.
  explicit Assembler(std::uint64_t base) : base_(base) {}

  std::uint64_t base() const { return base_; }
  /// Address of the *next* instruction to be emitted.
  std::uint64_t pc() const { return base_ + 4 * words_.size(); }
  std::size_t size_bytes() const { return 4 * words_.size(); }

  /// Finished program. Throws if any label is still unresolved.
  const std::vector<std::uint32_t>& finish();

  // ----- labels -----
  Label make_label() {
    labels_.push_back(kUnbound);
    return Label(static_cast<std::uint32_t>(labels_.size() - 1));
  }
  void bind(Label label);
  /// Creates a label already bound to the current pc.
  Label here() {
    Label label = make_label();
    bind(label);
    return label;
  }

  // ----- raw -----
  void emit(std::uint32_t word) { words_.push_back(word); }

  // ----- RV64I -----
  void lui(Xreg rd, std::int32_t imm20) {
    emit(encode::u_type(0x37, rd, static_cast<std::uint32_t>(imm20)));
  }
  void auipc(Xreg rd, std::int32_t imm20) {
    emit(encode::u_type(0x17, rd, static_cast<std::uint32_t>(imm20)));
  }
  void jal(Xreg rd, Label target);
  void jalr(Xreg rd, Xreg rs1, std::int32_t offset) {
    emit(encode::i_type(0x67, 0, rd, rs1, offset));
  }

  void beq(Xreg rs1, Xreg rs2, Label target) { branch(0, rs1, rs2, target); }
  void bne(Xreg rs1, Xreg rs2, Label target) { branch(1, rs1, rs2, target); }
  void blt(Xreg rs1, Xreg rs2, Label target) { branch(4, rs1, rs2, target); }
  void bge(Xreg rs1, Xreg rs2, Label target) { branch(5, rs1, rs2, target); }
  void bltu(Xreg rs1, Xreg rs2, Label target) { branch(6, rs1, rs2, target); }
  void bgeu(Xreg rs1, Xreg rs2, Label target) { branch(7, rs1, rs2, target); }
  // Pseudo: swapped-operand conditions.
  void bgt(Xreg rs1, Xreg rs2, Label target) { blt(rs2, rs1, target); }
  void ble(Xreg rs1, Xreg rs2, Label target) { bge(rs2, rs1, target); }
  void beqz(Xreg rs1, Label target) { beq(rs1, zero, target); }
  void bnez(Xreg rs1, Label target) { bne(rs1, zero, target); }
  void blez(Xreg rs1, Label target) { bge(zero, rs1, target); }
  void bgtz(Xreg rs1, Label target) { blt(zero, rs1, target); }

  void lb(Xreg rd, std::int32_t off, Xreg rs1) { load(0, rd, rs1, off); }
  void lh(Xreg rd, std::int32_t off, Xreg rs1) { load(1, rd, rs1, off); }
  void lw(Xreg rd, std::int32_t off, Xreg rs1) { load(2, rd, rs1, off); }
  void ld(Xreg rd, std::int32_t off, Xreg rs1) { load(3, rd, rs1, off); }
  void lbu(Xreg rd, std::int32_t off, Xreg rs1) { load(4, rd, rs1, off); }
  void lhu(Xreg rd, std::int32_t off, Xreg rs1) { load(5, rd, rs1, off); }
  void lwu(Xreg rd, std::int32_t off, Xreg rs1) { load(6, rd, rs1, off); }
  void sb(Xreg rs2, std::int32_t off, Xreg rs1) { store(0, rs1, rs2, off); }
  void sh(Xreg rs2, std::int32_t off, Xreg rs1) { store(1, rs1, rs2, off); }
  void sw(Xreg rs2, std::int32_t off, Xreg rs1) { store(2, rs1, rs2, off); }
  void sd(Xreg rs2, std::int32_t off, Xreg rs1) { store(3, rs1, rs2, off); }

  void addi(Xreg rd, Xreg rs1, std::int32_t imm) { opimm(0, rd, rs1, imm); }
  void slti(Xreg rd, Xreg rs1, std::int32_t imm) { opimm(2, rd, rs1, imm); }
  void sltiu(Xreg rd, Xreg rs1, std::int32_t imm) { opimm(3, rd, rs1, imm); }
  void xori(Xreg rd, Xreg rs1, std::int32_t imm) { opimm(4, rd, rs1, imm); }
  void ori(Xreg rd, Xreg rs1, std::int32_t imm) { opimm(6, rd, rs1, imm); }
  void andi(Xreg rd, Xreg rs1, std::int32_t imm) { opimm(7, rd, rs1, imm); }
  void slli(Xreg rd, Xreg rs1, unsigned shamt) {
    emit(encode::i_type(0x13, 1, rd, rs1, static_cast<std::int32_t>(shamt)));
  }
  void srli(Xreg rd, Xreg rs1, unsigned shamt) {
    emit(encode::i_type(0x13, 5, rd, rs1, static_cast<std::int32_t>(shamt)));
  }
  void srai(Xreg rd, Xreg rs1, unsigned shamt) {
    emit(encode::i_type(0x13, 5, rd, rs1,
                        static_cast<std::int32_t>(shamt | 0x400)));
  }

  void add(Xreg rd, Xreg rs1, Xreg rs2) { op(0, 0x00, rd, rs1, rs2); }
  void sub(Xreg rd, Xreg rs1, Xreg rs2) { op(0, 0x20, rd, rs1, rs2); }
  void sll(Xreg rd, Xreg rs1, Xreg rs2) { op(1, 0x00, rd, rs1, rs2); }
  void slt(Xreg rd, Xreg rs1, Xreg rs2) { op(2, 0x00, rd, rs1, rs2); }
  void sltu(Xreg rd, Xreg rs1, Xreg rs2) { op(3, 0x00, rd, rs1, rs2); }
  void xor_(Xreg rd, Xreg rs1, Xreg rs2) { op(4, 0x00, rd, rs1, rs2); }
  void srl(Xreg rd, Xreg rs1, Xreg rs2) { op(5, 0x00, rd, rs1, rs2); }
  void sra(Xreg rd, Xreg rs1, Xreg rs2) { op(5, 0x20, rd, rs1, rs2); }
  void or_(Xreg rd, Xreg rs1, Xreg rs2) { op(6, 0x00, rd, rs1, rs2); }
  void and_(Xreg rd, Xreg rs1, Xreg rs2) { op(7, 0x00, rd, rs1, rs2); }

  void addiw(Xreg rd, Xreg rs1, std::int32_t imm) {
    emit(encode::i_type(0x1B, 0, rd, rs1, imm));
  }
  void slliw(Xreg rd, Xreg rs1, unsigned shamt) {
    emit(encode::i_type(0x1B, 1, rd, rs1, static_cast<std::int32_t>(shamt)));
  }
  void srliw(Xreg rd, Xreg rs1, unsigned shamt) {
    emit(encode::i_type(0x1B, 5, rd, rs1, static_cast<std::int32_t>(shamt)));
  }
  void sraiw(Xreg rd, Xreg rs1, unsigned shamt) {
    emit(encode::i_type(0x1B, 5, rd, rs1,
                        static_cast<std::int32_t>(shamt | 0x400)));
  }
  void addw(Xreg rd, Xreg rs1, Xreg rs2) { op32(0, 0x00, rd, rs1, rs2); }
  void subw(Xreg rd, Xreg rs1, Xreg rs2) { op32(0, 0x20, rd, rs1, rs2); }
  void sllw(Xreg rd, Xreg rs1, Xreg rs2) { op32(1, 0x00, rd, rs1, rs2); }
  void srlw(Xreg rd, Xreg rs1, Xreg rs2) { op32(5, 0x00, rd, rs1, rs2); }
  void sraw(Xreg rd, Xreg rs1, Xreg rs2) { op32(5, 0x20, rd, rs1, rs2); }

  void fence() { emit(0x0FF0000F); }
  void ecall() { emit(0x00000073); }
  void ebreak() { emit(0x00100073); }

  // ----- RV64A -----
  void lr_w(Xreg rd, Xreg rs1) { amo(0x02, 2, rd, rs1, zero); }
  void lr_d(Xreg rd, Xreg rs1) { amo(0x02, 3, rd, rs1, zero); }
  void sc_w(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x03, 2, rd, rs1, rs2); }
  void sc_d(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x03, 3, rd, rs1, rs2); }
  void amoswap_w(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x01, 2, rd, rs1, rs2); }
  void amoswap_d(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x01, 3, rd, rs1, rs2); }
  void amoadd_w(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x00, 2, rd, rs1, rs2); }
  void amoadd_d(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x00, 3, rd, rs1, rs2); }
  void amoxor_d(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x04, 3, rd, rs1, rs2); }
  void amoand_d(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x0C, 3, rd, rs1, rs2); }
  void amoor_d(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x08, 3, rd, rs1, rs2); }
  void amomin_d(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x10, 3, rd, rs1, rs2); }
  void amomax_d(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x14, 3, rd, rs1, rs2); }
  void amominu_d(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x18, 3, rd, rs1, rs2); }
  void amomaxu_d(Xreg rd, Xreg rs2, Xreg rs1) { amo(0x1C, 3, rd, rs1, rs2); }

  // ----- Zicsr -----
  void csrrw(Xreg rd, std::uint32_t csr, Xreg rs1) {
    emit(encode::i_type(0x73, 1, rd, rs1, static_cast<std::int32_t>(csr)));
  }
  void csrrs(Xreg rd, std::uint32_t csr, Xreg rs1) {
    emit(encode::i_type(0x73, 2, rd, rs1, static_cast<std::int32_t>(csr)));
  }
  void csrr(Xreg rd, std::uint32_t csr) { csrrs(rd, csr, zero); }
  void csrw(std::uint32_t csr, Xreg rs1) { csrrw(zero, csr, rs1); }

  // ----- RV64M -----
  void mul(Xreg rd, Xreg rs1, Xreg rs2) { op(0, 0x01, rd, rs1, rs2); }
  void mulh(Xreg rd, Xreg rs1, Xreg rs2) { op(1, 0x01, rd, rs1, rs2); }
  void mulhsu(Xreg rd, Xreg rs1, Xreg rs2) { op(2, 0x01, rd, rs1, rs2); }
  void mulhu(Xreg rd, Xreg rs1, Xreg rs2) { op(3, 0x01, rd, rs1, rs2); }
  void div(Xreg rd, Xreg rs1, Xreg rs2) { op(4, 0x01, rd, rs1, rs2); }
  void divu(Xreg rd, Xreg rs1, Xreg rs2) { op(5, 0x01, rd, rs1, rs2); }
  void rem(Xreg rd, Xreg rs1, Xreg rs2) { op(6, 0x01, rd, rs1, rs2); }
  void remu(Xreg rd, Xreg rs1, Xreg rs2) { op(7, 0x01, rd, rs1, rs2); }
  void mulw(Xreg rd, Xreg rs1, Xreg rs2) { op32(0, 0x01, rd, rs1, rs2); }
  void divw(Xreg rd, Xreg rs1, Xreg rs2) { op32(4, 0x01, rd, rs1, rs2); }
  void divuw(Xreg rd, Xreg rs1, Xreg rs2) { op32(5, 0x01, rd, rs1, rs2); }
  void remw(Xreg rd, Xreg rs1, Xreg rs2) { op32(6, 0x01, rd, rs1, rs2); }
  void remuw(Xreg rd, Xreg rs1, Xreg rs2) { op32(7, 0x01, rd, rs1, rs2); }

  // ----- F/D -----
  void flw(Freg rd, std::int32_t off, Xreg rs1) {
    emit(encode::i_type(0x07, 2, rd, rs1, check_imm12(off)));
  }
  void fld(Freg rd, std::int32_t off, Xreg rs1) {
    emit(encode::i_type(0x07, 3, rd, rs1, check_imm12(off)));
  }
  void fsw(Freg rs2, std::int32_t off, Xreg rs1) {
    emit(encode::s_type(0x27, 2, rs1, rs2, check_imm12(off)));
  }
  void fsd(Freg rs2, std::int32_t off, Xreg rs1) {
    emit(encode::s_type(0x27, 3, rs1, rs2, check_imm12(off)));
  }
  void fadd_d(Freg rd, Freg rs1, Freg rs2) { opfp(0x01, 7, rd, rs1, rs2); }
  void fsub_d(Freg rd, Freg rs1, Freg rs2) { opfp(0x05, 7, rd, rs1, rs2); }
  void fmul_d(Freg rd, Freg rs1, Freg rs2) { opfp(0x09, 7, rd, rs1, rs2); }
  void fdiv_d(Freg rd, Freg rs1, Freg rs2) { opfp(0x0D, 7, rd, rs1, rs2); }
  void fsqrt_d(Freg rd, Freg rs1) { opfp(0x2D, 7, rd, rs1, Freg(0)); }
  void fsgnj_d(Freg rd, Freg rs1, Freg rs2) { opfp(0x11, 0, rd, rs1, rs2); }
  void fmin_d(Freg rd, Freg rs1, Freg rs2) { opfp(0x15, 0, rd, rs1, rs2); }
  void fmax_d(Freg rd, Freg rs1, Freg rs2) { opfp(0x15, 1, rd, rs1, rs2); }
  void fmv_d(Freg rd, Freg rs1) { fsgnj_d(rd, rs1, rs1); }
  void fadd_s(Freg rd, Freg rs1, Freg rs2) { opfp(0x00, 7, rd, rs1, rs2); }
  void fsub_s(Freg rd, Freg rs1, Freg rs2) { opfp(0x04, 7, rd, rs1, rs2); }
  void fmul_s(Freg rd, Freg rs1, Freg rs2) { opfp(0x08, 7, rd, rs1, rs2); }
  void fmadd_d(Freg rd, Freg rs1, Freg rs2, Freg rs3) { fma(0x43, rd, rs1, rs2, rs3); }
  void fmsub_d(Freg rd, Freg rs1, Freg rs2, Freg rs3) { fma(0x47, rd, rs1, rs2, rs3); }
  void fnmsub_d(Freg rd, Freg rs1, Freg rs2, Freg rs3) { fma(0x4B, rd, rs1, rs2, rs3); }
  void fnmadd_d(Freg rd, Freg rs1, Freg rs2, Freg rs3) { fma(0x4F, rd, rs1, rs2, rs3); }
  void feq_d(Xreg rd, Freg rs1, Freg rs2) {
    emit(encode::r_type(0x53, 2, 0x51, rd, rs1, rs2));
  }
  void flt_d(Xreg rd, Freg rs1, Freg rs2) {
    emit(encode::r_type(0x53, 1, 0x51, rd, rs1, rs2));
  }
  void fle_d(Xreg rd, Freg rs1, Freg rs2) {
    emit(encode::r_type(0x53, 0, 0x51, rd, rs1, rs2));
  }
  void fcvt_d_l(Freg rd, Xreg rs1) {
    emit(encode::r_type(0x53, 7, 0x69, rd, rs1, 2));
  }
  void fcvt_d_w(Freg rd, Xreg rs1) {
    emit(encode::r_type(0x53, 7, 0x69, rd, rs1, 0));
  }
  void fcvt_l_d(Xreg rd, Freg rs1) {
    emit(encode::r_type(0x53, 1 /*rtz*/, 0x61, rd, rs1, 2));
  }
  void fcvt_w_d(Xreg rd, Freg rs1) {
    emit(encode::r_type(0x53, 1 /*rtz*/, 0x61, rd, rs1, 0));
  }
  void fmv_x_d(Xreg rd, Freg rs1) {
    emit(encode::r_type(0x53, 0, 0x71, rd, rs1, 0));
  }
  void fmv_d_x(Freg rd, Xreg rs1) {
    emit(encode::r_type(0x53, 0, 0x79, rd, rs1, 0));
  }

  // ----- V: configuration -----
  void vsetvli(Xreg rd, Xreg rs1, Sew sew, Lmul lmul) {
    const std::uint32_t vt = encode::vtype_imm(static_cast<std::uint32_t>(sew),
                                               static_cast<std::uint32_t>(lmul));
    emit(encode::i_type(0x57, 7, rd, rs1, static_cast<std::int32_t>(vt)));
  }
  void vsetivli(Xreg rd, std::uint8_t avl, Sew sew, Lmul lmul) {
    const std::uint32_t vt = encode::vtype_imm(static_cast<std::uint32_t>(sew),
                                               static_cast<std::uint32_t>(lmul));
    emit(encode::i_type(0x57, 7, rd, static_cast<Xreg>(avl & 0x1F),
                        static_cast<std::int32_t>(vt | 0xC00)));
  }

  // ----- V: memory -----
  void vle8(Vreg vd, Xreg rs1, bool vm = true) { vmem_unit(0x07, 0, vd, rs1, vm); }
  void vle16(Vreg vd, Xreg rs1, bool vm = true) { vmem_unit(0x07, 5, vd, rs1, vm); }
  void vle32(Vreg vd, Xreg rs1, bool vm = true) { vmem_unit(0x07, 6, vd, rs1, vm); }
  void vle64(Vreg vd, Xreg rs1, bool vm = true) { vmem_unit(0x07, 7, vd, rs1, vm); }
  void vse8(Vreg vs3, Xreg rs1, bool vm = true) { vmem_unit(0x27, 0, vs3, rs1, vm); }
  void vse16(Vreg vs3, Xreg rs1, bool vm = true) { vmem_unit(0x27, 5, vs3, rs1, vm); }
  void vse32(Vreg vs3, Xreg rs1, bool vm = true) { vmem_unit(0x27, 6, vs3, rs1, vm); }
  void vse64(Vreg vs3, Xreg rs1, bool vm = true) { vmem_unit(0x27, 7, vs3, rs1, vm); }
  void vlse32(Vreg vd, Xreg rs1, Xreg stride, bool vm = true) {
    emit(encode::v_mem(0x07, 6, 2, vm, stride, rs1, vd));
  }
  void vlse64(Vreg vd, Xreg rs1, Xreg stride, bool vm = true) {
    emit(encode::v_mem(0x07, 7, 2, vm, stride, rs1, vd));
  }
  void vsse32(Vreg vs3, Xreg rs1, Xreg stride, bool vm = true) {
    emit(encode::v_mem(0x27, 6, 2, vm, stride, rs1, vs3));
  }
  void vsse64(Vreg vs3, Xreg rs1, Xreg stride, bool vm = true) {
    emit(encode::v_mem(0x27, 7, 2, vm, stride, rs1, vs3));
  }
  void vluxei32(Vreg vd, Xreg rs1, Vreg idx, bool vm = true) {
    emit(encode::v_mem(0x07, 6, 1, vm, idx, rs1, vd));
  }
  void vluxei64(Vreg vd, Xreg rs1, Vreg idx, bool vm = true) {
    emit(encode::v_mem(0x07, 7, 1, vm, idx, rs1, vd));
  }
  void vsuxei64(Vreg vs3, Xreg rs1, Vreg idx, bool vm = true) {
    emit(encode::v_mem(0x27, 7, 1, vm, idx, rs1, vs3));
  }

  // ----- V: integer arithmetic -----
  void vadd_vv(Vreg vd, Vreg vs2, Vreg vs1, bool vm = true) { vivv(0x00, vd, vs2, vs1, vm); }
  void vadd_vx(Vreg vd, Vreg vs2, Xreg rs1, bool vm = true) { vivx(0x00, vd, vs2, rs1, vm); }
  void vadd_vi(Vreg vd, Vreg vs2, std::int8_t imm, bool vm = true) { vivi(0x00, vd, vs2, imm, vm); }
  void vsub_vv(Vreg vd, Vreg vs2, Vreg vs1, bool vm = true) { vivv(0x02, vd, vs2, vs1, vm); }
  void vand_vv(Vreg vd, Vreg vs2, Vreg vs1, bool vm = true) { vivv(0x09, vd, vs2, vs1, vm); }
  void vor_vv(Vreg vd, Vreg vs2, Vreg vs1, bool vm = true) { vivv(0x0A, vd, vs2, vs1, vm); }
  void vxor_vv(Vreg vd, Vreg vs2, Vreg vs1, bool vm = true) { vivv(0x0B, vd, vs2, vs1, vm); }
  void vsll_vi(Vreg vd, Vreg vs2, std::uint8_t shamt, bool vm = true) {
    vivi(0x25, vd, vs2, static_cast<std::int8_t>(shamt), vm);
  }
  void vsll_vx(Vreg vd, Vreg vs2, Xreg rs1, bool vm = true) { vivx(0x25, vd, vs2, rs1, vm); }
  void vsrl_vi(Vreg vd, Vreg vs2, std::uint8_t shamt, bool vm = true) {
    vivi(0x28, vd, vs2, static_cast<std::int8_t>(shamt), vm);
  }
  void vmul_vv(Vreg vd, Vreg vs2, Vreg vs1, bool vm = true) { vmvv(0x25, vd, vs2, vs1, vm); }
  void vmul_vx(Vreg vd, Vreg vs2, Xreg rs1, bool vm = true) { vmvx(0x25, vd, vs2, rs1, vm); }
  void vmacc_vv(Vreg vd, Vreg vs1, Vreg vs2, bool vm = true) { vmvv(0x2D, vd, vs2, vs1, vm); }
  void vmv_v_v(Vreg vd, Vreg vs1) { vivv(0x17, vd, Vreg(0), vs1, true); }
  void vmv_v_x(Vreg vd, Xreg rs1) { vivx(0x17, vd, Vreg(0), rs1, true); }
  void vmv_v_i(Vreg vd, std::int8_t imm) { vivi(0x17, vd, Vreg(0), imm, true); }
  void vmerge_vvm(Vreg vd, Vreg vs2, Vreg vs1) { vivv(0x17, vd, vs2, vs1, false); }
  void vid_v(Vreg vd, bool vm = true) {
    emit(encode::v_arith(0x14, vm, 0, 0x11, 2, vd));
  }
  void vmv_x_s(Xreg rd, Vreg vs2) {
    emit(encode::v_arith(0x10, true, vs2, 0, 2, rd));
  }
  void vmv_s_x(Vreg vd, Xreg rs1) {
    emit(encode::v_arith(0x10, true, 0, rs1, 6, vd));
  }
  void vslide1down_vx(Vreg vd, Vreg vs2, Xreg rs1, bool vm = true) {
    vmvx(0x0F, vd, vs2, rs1, vm);
  }
  void vslidedown_vi(Vreg vd, Vreg vs2, std::uint8_t offset, bool vm = true) {
    vivi(0x0F, vd, vs2, static_cast<std::int8_t>(offset), vm);
  }
  void vmseq_vx(Vreg vd, Vreg vs2, Xreg rs1) { vivx(0x18, vd, vs2, rs1, true); }
  void vmslt_vx(Vreg vd, Vreg vs2, Xreg rs1) { vivx(0x1B, vd, vs2, rs1, true); }
  void vredsum_vs(Vreg vd, Vreg vs2, Vreg vs1, bool vm = true) {
    vmvv(0x00, vd, vs2, vs1, vm);
  }

  // ----- V: floating point -----
  void vfadd_vv(Vreg vd, Vreg vs2, Vreg vs1, bool vm = true) { vfvv(0x00, vd, vs2, vs1, vm); }
  void vfadd_vf(Vreg vd, Vreg vs2, Freg rs1, bool vm = true) { vfvf(0x00, vd, vs2, rs1, vm); }
  void vfsub_vv(Vreg vd, Vreg vs2, Vreg vs1, bool vm = true) { vfvv(0x02, vd, vs2, vs1, vm); }
  void vfmul_vv(Vreg vd, Vreg vs2, Vreg vs1, bool vm = true) { vfvv(0x24, vd, vs2, vs1, vm); }
  void vfmul_vf(Vreg vd, Vreg vs2, Freg rs1, bool vm = true) { vfvf(0x24, vd, vs2, rs1, vm); }
  /// vfmacc.vv vd, vs1, vs2 : vd[i] += vs1[i] * vs2[i]
  void vfmacc_vv(Vreg vd, Vreg vs1, Vreg vs2, bool vm = true) { vfvv(0x2C, vd, vs2, vs1, vm); }
  void vfmacc_vf(Vreg vd, Freg rs1, Vreg vs2, bool vm = true) { vfvf(0x2C, vd, vs2, rs1, vm); }
  void vfmv_v_f(Vreg vd, Freg rs1) { vfvf(0x17, vd, Vreg(0), rs1, true); }
  void vfmv_f_s(Freg rd, Vreg vs2) {
    emit(encode::v_arith(0x10, true, vs2, 0, 1, rd));
  }
  void vfmv_s_f(Vreg vd, Freg rs1) {
    emit(encode::v_arith(0x10, true, 0, rs1, 5, vd));
  }
  void vfredusum_vs(Vreg vd, Vreg vs2, Vreg vs1, bool vm = true) {
    vfvv(0x01, vd, vs2, vs1, vm);
  }
  void vfredosum_vs(Vreg vd, Vreg vs2, Vreg vs1, bool vm = true) {
    vfvv(0x03, vd, vs2, vs1, vm);
  }

  // ----- pseudo-instructions -----
  void nop() { addi(zero, zero, 0); }
  void mv(Xreg rd, Xreg rs1) { addi(rd, rs1, 0); }
  void neg(Xreg rd, Xreg rs1) { sub(rd, zero, rs1); }
  void seqz(Xreg rd, Xreg rs1) { sltiu(rd, rs1, 1); }
  void snez(Xreg rd, Xreg rs1) { sltu(rd, zero, rs1); }
  void j(Label target) { jal(zero, target); }
  void ret() { jalr(zero, ra, 0); }
  void call(Label target) { jal(ra, target); }
  /// Materializes an arbitrary 64-bit constant (1..8 instructions).
  void li(Xreg rd, std::int64_t value);

 private:
  static constexpr std::uint64_t kUnbound = ~std::uint64_t{0};

  struct Fixup {
    std::size_t word_index;
    std::uint32_t label_id;
    bool is_jal;  // else conditional branch
  };

  /// 12-bit signed immediates (loads/stores/op-imm/jalr) must fit; a silent
  /// wrap would corrupt the program.
  static std::int32_t check_imm12(std::int32_t imm) {
    if (imm < -2048 || imm > 2047) {
      throw SimError(strfmt("assembler: immediate %d out of 12-bit range",
                            imm));
    }
    return imm;
  }

  void load(std::uint32_t funct3, Xreg rd, Xreg rs1, std::int32_t off) {
    emit(encode::i_type(0x03, funct3, rd, rs1, check_imm12(off)));
  }
  void store(std::uint32_t funct3, Xreg rs1, Xreg rs2, std::int32_t off) {
    emit(encode::s_type(0x23, funct3, rs1, rs2, check_imm12(off)));
  }
  void opimm(std::uint32_t funct3, Xreg rd, Xreg rs1, std::int32_t imm) {
    emit(encode::i_type(0x13, funct3, rd, rs1, check_imm12(imm)));
  }
  void op(std::uint32_t funct3, std::uint32_t funct7, Xreg rd, Xreg rs1,
          Xreg rs2) {
    emit(encode::r_type(0x33, funct3, funct7, rd, rs1, rs2));
  }
  void op32(std::uint32_t funct3, std::uint32_t funct7, Xreg rd, Xreg rs1,
            Xreg rs2) {
    emit(encode::r_type(0x3B, funct3, funct7, rd, rs1, rs2));
  }
  void amo(std::uint32_t funct5, std::uint32_t funct3, Xreg rd, Xreg rs1,
           Xreg rs2) {
    emit(encode::r_type(0x2F, funct3, funct5 << 2, rd, rs1, rs2));
  }
  void opfp(std::uint32_t funct7, std::uint32_t funct3, Freg rd, Freg rs1,
            Freg rs2) {
    emit(encode::r_type(0x53, funct3, funct7, rd, rs1, rs2));
  }
  void fma(std::uint32_t opcode, Freg rd, Freg rs1, Freg rs2, Freg rs3) {
    emit(encode::r_type(opcode, 7, (static_cast<std::uint32_t>(rs3) << 2) | 1,
                        rd, rs1, rs2));
  }
  void vmem_unit(std::uint32_t opcode, std::uint32_t width, Vreg v, Xreg rs1,
                 bool vm) {
    emit(encode::v_mem(opcode, width, 0, vm, 0, rs1, v));
  }
  void vivv(std::uint32_t f6, Vreg vd, Vreg vs2, Vreg vs1, bool vm) {
    emit(encode::v_arith(f6, vm, vs2, vs1, 0, vd));
  }
  void vivx(std::uint32_t f6, Vreg vd, Vreg vs2, Xreg rs1, bool vm) {
    emit(encode::v_arith(f6, vm, vs2, rs1, 4, vd));
  }
  void vivi(std::uint32_t f6, Vreg vd, Vreg vs2, std::int8_t imm, bool vm) {
    emit(encode::v_arith(f6, vm, vs2, static_cast<std::uint32_t>(imm) & 0x1F,
                         3, vd));
  }
  void vmvv(std::uint32_t f6, Vreg vd, Vreg vs2, Vreg vs1, bool vm) {
    emit(encode::v_arith(f6, vm, vs2, vs1, 2, vd));
  }
  void vmvx(std::uint32_t f6, Vreg vd, Vreg vs2, Xreg rs1, bool vm) {
    emit(encode::v_arith(f6, vm, vs2, rs1, 6, vd));
  }
  void vfvv(std::uint32_t f6, Vreg vd, Vreg vs2, Vreg vs1, bool vm) {
    emit(encode::v_arith(f6, vm, vs2, vs1, 1, vd));
  }
  void vfvf(std::uint32_t f6, Vreg vd, Vreg vs2, Freg rs1, bool vm) {
    emit(encode::v_arith(f6, vm, vs2, rs1, 5, vd));
  }

  void branch(std::uint32_t funct3, Xreg rs1, Xreg rs2, Label target);
  std::int64_t offset_to(std::uint64_t target_addr, std::size_t word_index)
      const {
    return static_cast<std::int64_t>(target_addr) -
           static_cast<std::int64_t>(base_ + 4 * word_index);
  }

  std::uint64_t base_;
  std::vector<std::uint32_t> words_;
  std::vector<std::uint64_t> labels_;  // bound address or kUnbound
  std::vector<Fixup> fixups_;
};

}  // namespace coyote::isa
