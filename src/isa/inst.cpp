#include "isa/inst.h"

#include "common/error.h"

namespace coyote::isa {

namespace {

// (enum, mnemonic) table; kept in one place so op_name stays in sync with
// the enum.
struct OpName {
  Op op;
  const char* name;
};

constexpr OpName kOpNames[] = {
    {Op::kIllegal, "illegal"},
    {Op::kLui, "lui"}, {Op::kAuipc, "auipc"}, {Op::kJal, "jal"},
    {Op::kJalr, "jalr"}, {Op::kBeq, "beq"}, {Op::kBne, "bne"},
    {Op::kBlt, "blt"}, {Op::kBge, "bge"}, {Op::kBltu, "bltu"},
    {Op::kBgeu, "bgeu"}, {Op::kLb, "lb"}, {Op::kLh, "lh"}, {Op::kLw, "lw"},
    {Op::kLd, "ld"}, {Op::kLbu, "lbu"}, {Op::kLhu, "lhu"}, {Op::kLwu, "lwu"},
    {Op::kSb, "sb"}, {Op::kSh, "sh"}, {Op::kSw, "sw"}, {Op::kSd, "sd"},
    {Op::kAddi, "addi"}, {Op::kSlti, "slti"}, {Op::kSltiu, "sltiu"},
    {Op::kXori, "xori"}, {Op::kOri, "ori"}, {Op::kAndi, "andi"},
    {Op::kSlli, "slli"}, {Op::kSrli, "srli"}, {Op::kSrai, "srai"},
    {Op::kAdd, "add"}, {Op::kSub, "sub"}, {Op::kSll, "sll"},
    {Op::kSlt, "slt"}, {Op::kSltu, "sltu"}, {Op::kXor, "xor"},
    {Op::kSrl, "srl"}, {Op::kSra, "sra"}, {Op::kOr, "or"}, {Op::kAnd, "and"},
    {Op::kAddiw, "addiw"}, {Op::kSlliw, "slliw"}, {Op::kSrliw, "srliw"},
    {Op::kSraiw, "sraiw"}, {Op::kAddw, "addw"}, {Op::kSubw, "subw"},
    {Op::kSllw, "sllw"}, {Op::kSrlw, "srlw"}, {Op::kSraw, "sraw"},
    {Op::kFence, "fence"}, {Op::kFenceI, "fence.i"}, {Op::kEcall, "ecall"},
    {Op::kEbreak, "ebreak"},
    {Op::kLrW, "lr.w"}, {Op::kLrD, "lr.d"}, {Op::kScW, "sc.w"},
    {Op::kScD, "sc.d"},
    {Op::kAmoswapW, "amoswap.w"}, {Op::kAmoswapD, "amoswap.d"},
    {Op::kAmoaddW, "amoadd.w"}, {Op::kAmoaddD, "amoadd.d"},
    {Op::kAmoxorW, "amoxor.w"}, {Op::kAmoxorD, "amoxor.d"},
    {Op::kAmoandW, "amoand.w"}, {Op::kAmoandD, "amoand.d"},
    {Op::kAmoorW, "amoor.w"}, {Op::kAmoorD, "amoor.d"},
    {Op::kAmominW, "amomin.w"}, {Op::kAmominD, "amomin.d"},
    {Op::kAmomaxW, "amomax.w"}, {Op::kAmomaxD, "amomax.d"},
    {Op::kAmominuW, "amominu.w"}, {Op::kAmominuD, "amominu.d"},
    {Op::kAmomaxuW, "amomaxu.w"}, {Op::kAmomaxuD, "amomaxu.d"},
    {Op::kCsrrw, "csrrw"}, {Op::kCsrrs, "csrrs"}, {Op::kCsrrc, "csrrc"},
    {Op::kCsrrwi, "csrrwi"}, {Op::kCsrrsi, "csrrsi"}, {Op::kCsrrci, "csrrci"},
    {Op::kMul, "mul"}, {Op::kMulh, "mulh"}, {Op::kMulhsu, "mulhsu"},
    {Op::kMulhu, "mulhu"}, {Op::kDiv, "div"}, {Op::kDivu, "divu"},
    {Op::kRem, "rem"}, {Op::kRemu, "remu"}, {Op::kMulw, "mulw"},
    {Op::kDivw, "divw"}, {Op::kDivuw, "divuw"}, {Op::kRemw, "remw"},
    {Op::kRemuw, "remuw"},
    {Op::kFlw, "flw"}, {Op::kFld, "fld"}, {Op::kFsw, "fsw"},
    {Op::kFsd, "fsd"},
    {Op::kFaddD, "fadd.d"}, {Op::kFsubD, "fsub.d"}, {Op::kFmulD, "fmul.d"},
    {Op::kFdivD, "fdiv.d"}, {Op::kFsqrtD, "fsqrt.d"},
    {Op::kFsgnjD, "fsgnj.d"}, {Op::kFsgnjnD, "fsgnjn.d"},
    {Op::kFsgnjxD, "fsgnjx.d"}, {Op::kFminD, "fmin.d"},
    {Op::kFmaxD, "fmax.d"},
    {Op::kFaddS, "fadd.s"}, {Op::kFsubS, "fsub.s"}, {Op::kFmulS, "fmul.s"},
    {Op::kFdivS, "fdiv.s"},
    {Op::kFmaddD, "fmadd.d"}, {Op::kFmsubD, "fmsub.d"},
    {Op::kFnmsubD, "fnmsub.d"}, {Op::kFnmaddD, "fnmadd.d"},
    {Op::kFeqD, "feq.d"}, {Op::kFltD, "flt.d"}, {Op::kFleD, "fle.d"},
    {Op::kFcvtWD, "fcvt.w.d"}, {Op::kFcvtWuD, "fcvt.wu.d"},
    {Op::kFcvtLD, "fcvt.l.d"}, {Op::kFcvtLuD, "fcvt.lu.d"},
    {Op::kFcvtDW, "fcvt.d.w"}, {Op::kFcvtDWu, "fcvt.d.wu"},
    {Op::kFcvtDL, "fcvt.d.l"}, {Op::kFcvtDLu, "fcvt.d.lu"},
    {Op::kFcvtDS, "fcvt.d.s"}, {Op::kFcvtSD, "fcvt.s.d"},
    {Op::kFmvXD, "fmv.x.d"}, {Op::kFmvDX, "fmv.d.x"},
    {Op::kFmvXW, "fmv.x.w"}, {Op::kFmvWX, "fmv.w.x"},
    {Op::kVsetvli, "vsetvli"}, {Op::kVsetivli, "vsetivli"},
    {Op::kVsetvl, "vsetvl"},
    {Op::kVle8, "vle8.v"}, {Op::kVle16, "vle16.v"}, {Op::kVle32, "vle32.v"},
    {Op::kVle64, "vle64.v"}, {Op::kVse8, "vse8.v"}, {Op::kVse16, "vse16.v"},
    {Op::kVse32, "vse32.v"}, {Op::kVse64, "vse64.v"},
    {Op::kVlse8, "vlse8.v"}, {Op::kVlse16, "vlse16.v"},
    {Op::kVlse32, "vlse32.v"}, {Op::kVlse64, "vlse64.v"},
    {Op::kVsse8, "vsse8.v"}, {Op::kVsse16, "vsse16.v"},
    {Op::kVsse32, "vsse32.v"}, {Op::kVsse64, "vsse64.v"},
    {Op::kVluxei8, "vluxei8.v"}, {Op::kVluxei16, "vluxei16.v"},
    {Op::kVluxei32, "vluxei32.v"}, {Op::kVluxei64, "vluxei64.v"},
    {Op::kVsuxei8, "vsuxei8.v"}, {Op::kVsuxei16, "vsuxei16.v"},
    {Op::kVsuxei32, "vsuxei32.v"}, {Op::kVsuxei64, "vsuxei64.v"},
    {Op::kVaddVV, "vadd.vv"}, {Op::kVaddVX, "vadd.vx"},
    {Op::kVaddVI, "vadd.vi"}, {Op::kVsubVV, "vsub.vv"},
    {Op::kVsubVX, "vsub.vx"}, {Op::kVrsubVX, "vrsub.vx"},
    {Op::kVrsubVI, "vrsub.vi"},
    {Op::kVandVV, "vand.vv"}, {Op::kVandVX, "vand.vx"},
    {Op::kVandVI, "vand.vi"}, {Op::kVorVV, "vor.vv"},
    {Op::kVorVX, "vor.vx"}, {Op::kVorVI, "vor.vi"},
    {Op::kVxorVV, "vxor.vv"}, {Op::kVxorVX, "vxor.vx"},
    {Op::kVxorVI, "vxor.vi"},
    {Op::kVsllVV, "vsll.vv"}, {Op::kVsllVX, "vsll.vx"},
    {Op::kVsllVI, "vsll.vi"}, {Op::kVsrlVV, "vsrl.vv"},
    {Op::kVsrlVX, "vsrl.vx"}, {Op::kVsrlVI, "vsrl.vi"},
    {Op::kVsraVV, "vsra.vv"}, {Op::kVsraVX, "vsra.vx"},
    {Op::kVsraVI, "vsra.vi"},
    {Op::kVminuVV, "vminu.vv"}, {Op::kVminVV, "vmin.vv"},
    {Op::kVmaxuVV, "vmaxu.vv"}, {Op::kVmaxVV, "vmax.vv"},
    {Op::kVmulVV, "vmul.vv"}, {Op::kVmulVX, "vmul.vx"},
    {Op::kVmaccVV, "vmacc.vv"}, {Op::kVmaccVX, "vmacc.vx"},
    {Op::kVdivVV, "vdiv.vv"}, {Op::kVdivuVV, "vdivu.vv"},
    {Op::kVremVV, "vrem.vv"}, {Op::kVremuVV, "vremu.vv"},
    {Op::kVmvVV, "vmv.v.v"}, {Op::kVmvVX, "vmv.v.x"},
    {Op::kVmvVI, "vmv.v.i"}, {Op::kVmergeVVM, "vmerge.vvm"},
    {Op::kVmergeVXM, "vmerge.vxm"},
    {Op::kVidV, "vid.v"}, {Op::kVmvXS, "vmv.x.s"}, {Op::kVmvSX, "vmv.s.x"},
    {Op::kVslide1downVX, "vslide1down.vx"},
    {Op::kVslidedownVX, "vslidedown.vx"},
    {Op::kVslidedownVI, "vslidedown.vi"},
    {Op::kVslideupVX, "vslideup.vx"},
    {Op::kVslideupVI, "vslideup.vi"},
    {Op::kVrgatherVV, "vrgather.vv"},
    {Op::kVmseqVV, "vmseq.vv"}, {Op::kVmseqVX, "vmseq.vx"},
    {Op::kVmseqVI, "vmseq.vi"}, {Op::kVmsneVV, "vmsne.vv"},
    {Op::kVmsneVX, "vmsne.vx"}, {Op::kVmsltVV, "vmslt.vv"},
    {Op::kVmsltVX, "vmslt.vx"}, {Op::kVmsltuVV, "vmsltu.vv"},
    {Op::kVmsltuVX, "vmsltu.vx"}, {Op::kVmsleVV, "vmsle.vv"},
    {Op::kVmsleVX, "vmsle.vx"},
    {Op::kVredsumVS, "vredsum.vs"}, {Op::kVredmaxVS, "vredmax.vs"},
    {Op::kVredminVS, "vredmin.vs"},
    {Op::kVfaddVV, "vfadd.vv"}, {Op::kVfaddVF, "vfadd.vf"},
    {Op::kVfsubVV, "vfsub.vv"}, {Op::kVfsubVF, "vfsub.vf"},
    {Op::kVfmulVV, "vfmul.vv"}, {Op::kVfmulVF, "vfmul.vf"},
    {Op::kVfdivVV, "vfdiv.vv"}, {Op::kVfmaccVV, "vfmacc.vv"},
    {Op::kVfmaccVF, "vfmacc.vf"}, {Op::kVfnmaccVV, "vfnmacc.vv"},
    {Op::kVfmsacVV, "vfmsac.vv"}, {Op::kVfmaddVV, "vfmadd.vv"},
    {Op::kVfminVV, "vfmin.vv"}, {Op::kVfmaxVV, "vfmax.vv"},
    {Op::kVfmvVF, "vfmv.v.f"}, {Op::kVfmvFS, "vfmv.f.s"},
    {Op::kVfmvSF, "vfmv.s.f"},
    {Op::kVfredusumVS, "vfredusum.vs"}, {Op::kVfredosumVS, "vfredosum.vs"},
    {Op::kVfredmaxVS, "vfredmax.vs"}, {Op::kVfredminVS, "vfredmin.vs"},
};

}  // namespace

const char* op_name(Op op) {
  for (const auto& entry : kOpNames) {
    if (entry.op == op) return entry.name;
  }
  return "?";
}

bool is_load(Op op) {
  switch (op) {
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
    case Op::kLbu: case Op::kLhu: case Op::kLwu:
    case Op::kFlw: case Op::kFld:
    case Op::kVle8: case Op::kVle16: case Op::kVle32: case Op::kVle64:
    case Op::kVlse8: case Op::kVlse16: case Op::kVlse32: case Op::kVlse64:
    case Op::kVluxei8: case Op::kVluxei16: case Op::kVluxei32:
    case Op::kVluxei64:
      return true;
    default:
      return false;
  }
}

bool is_store(Op op) {
  switch (op) {
    case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd:
    case Op::kFsw: case Op::kFsd:
    case Op::kVse8: case Op::kVse16: case Op::kVse32: case Op::kVse64:
    case Op::kVsse8: case Op::kVsse16: case Op::kVsse32: case Op::kVsse64:
    case Op::kVsuxei8: case Op::kVsuxei16: case Op::kVsuxei32:
    case Op::kVsuxei64:
      return true;
    default:
      return false;
  }
}

bool is_amo(Op op) {
  return op >= Op::kLrW && op <= Op::kAmomaxuD;
}

bool is_vector(Op op) {
  return op >= Op::kVsetvli && op < Op::kOpCount;
}

bool is_branch_or_jump(Op op) {
  switch (op) {
    case Op::kJal: case Op::kJalr:
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
      return true;
    default:
      return false;
  }
}

bool is_fp(Op op) {
  return (op >= Op::kFlw && op <= Op::kFmvWX) || op == Op::kVfaddVF ||
         op == Op::kVfsubVF || op == Op::kVfmulVF || op == Op::kVfmaccVF ||
         op == Op::kVfmvVF || op == Op::kVfmvFS || op == Op::kVfmvSF;
}

namespace {

void push_x(std::vector<RegRef>& out, std::uint8_t index) {
  if (index != 0) out.push_back(RegRef{RegFile::kX, index});
}
void push_f(std::vector<RegRef>& out, std::uint8_t index) {
  out.push_back(RegRef{RegFile::kF, index});
}
void push_v(std::vector<RegRef>& out, std::uint8_t index) {
  out.push_back(RegRef{RegFile::kV, index});
}

/// Operand shape of an instruction, driving both reg-ref functions.
enum class Shape {
  kNone,          // fence, ecall, ...
  kRArith,        // x = x op x
  kIArith,        // x = x op imm
  kUType,         // x = imm (lui/auipc)
  kJal,           // x =
  kJalr,          // x = x
  kBranch,        // reads x, x
  kLoadX,         // x = M[x]
  kLoadF,         // f = M[x]
  kStoreX,        // M[x] = x
  kStoreF,        // M[x] = f
  kCsr,           // x = csr, csr op= x
  kCsrImm,        // x = csr
  kAmo,           // x = M[x]; M[x] = f(M[x], x)
  kLr,            // x = M[x]
  kFArith2,       // f = f op f
  kFArith1,       // f = op f
  kFma,           // f = f*f+f
  kFcmp,          // x = f op f
  kFcvtToX,       // x = f
  kFcvtFromX,     // f = x
  kVset,          // x = x (vsetvli) / x = (vsetivli) / x = x,x (vsetvl)
  kVLoadUnit,     // v = M[x]
  kVLoadStride,   // v = M[x, x]
  kVLoadIndex,    // v = M[x, v]
  kVStoreUnit,    // M[x] = v
  kVStoreStride,  // M[x, x] = v
  kVStoreIndex,   // M[x, v] = v
  kVArithVV,      // v = v op v
  kVArithVX,      // v = v op x
  kVArithVI,      // v = v op imm
  kVMacVV,        // v += v*v (also reads vd)
  kVMacVX,        // v += x*v
  kVRed,          // v[0] = reduce(v, v[0])
  kVMvVF,         // v = f
  kVMvFS,         // f = v[0]
  kVMvSF,         // v[0] = f
  kVMvXS,         // x = v[0]
  kVMvSX,         // v[0] = x
  kVId,           // v = iota
  kVArithVF,      // v = v op f
};

Shape shape_of(Op op) {
  switch (op) {
    case Op::kIllegal: case Op::kFence: case Op::kFenceI:
    case Op::kEcall: case Op::kEbreak:
      return Shape::kNone;
    case Op::kLui: case Op::kAuipc:
      return Shape::kUType;
    case Op::kJal:
      return Shape::kJal;
    case Op::kJalr:
      return Shape::kJalr;
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
      return Shape::kBranch;
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
    case Op::kLbu: case Op::kLhu: case Op::kLwu:
      return Shape::kLoadX;
    case Op::kFlw: case Op::kFld:
      return Shape::kLoadF;
    case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd:
      return Shape::kStoreX;
    case Op::kFsw: case Op::kFsd:
      return Shape::kStoreF;
    case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
    case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
    case Op::kSrai: case Op::kAddiw: case Op::kSlliw: case Op::kSrliw:
    case Op::kSraiw:
      return Shape::kIArith;
    case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt:
    case Op::kSltu: case Op::kXor: case Op::kSrl: case Op::kSra:
    case Op::kOr: case Op::kAnd: case Op::kAddw: case Op::kSubw:
    case Op::kSllw: case Op::kSrlw: case Op::kSraw:
    case Op::kMul: case Op::kMulh: case Op::kMulhsu: case Op::kMulhu:
    case Op::kDiv: case Op::kDivu: case Op::kRem: case Op::kRemu:
    case Op::kMulw: case Op::kDivw: case Op::kDivuw: case Op::kRemw:
    case Op::kRemuw:
      return Shape::kRArith;
    case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
      return Shape::kCsr;
    case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci:
      return Shape::kCsrImm;
    case Op::kLrW: case Op::kLrD:
      return Shape::kLr;
    case Op::kScW: case Op::kScD:
    case Op::kAmoswapW: case Op::kAmoswapD: case Op::kAmoaddW:
    case Op::kAmoaddD: case Op::kAmoxorW: case Op::kAmoxorD:
    case Op::kAmoandW: case Op::kAmoandD: case Op::kAmoorW: case Op::kAmoorD:
    case Op::kAmominW: case Op::kAmominD: case Op::kAmomaxW:
    case Op::kAmomaxD: case Op::kAmominuW: case Op::kAmominuD:
    case Op::kAmomaxuW: case Op::kAmomaxuD:
      return Shape::kAmo;
    case Op::kFaddD: case Op::kFsubD: case Op::kFmulD: case Op::kFdivD:
    case Op::kFsgnjD: case Op::kFsgnjnD: case Op::kFsgnjxD:
    case Op::kFminD: case Op::kFmaxD:
    case Op::kFaddS: case Op::kFsubS: case Op::kFmulS: case Op::kFdivS:
      return Shape::kFArith2;
    case Op::kFsqrtD: case Op::kFcvtDS: case Op::kFcvtSD:
      return Shape::kFArith1;
    case Op::kFmaddD: case Op::kFmsubD: case Op::kFnmsubD: case Op::kFnmaddD:
      return Shape::kFma;
    case Op::kFeqD: case Op::kFltD: case Op::kFleD:
      return Shape::kFcmp;
    case Op::kFcvtWD: case Op::kFcvtWuD: case Op::kFcvtLD: case Op::kFcvtLuD:
    case Op::kFmvXD: case Op::kFmvXW:
      return Shape::kFcvtToX;
    case Op::kFcvtDW: case Op::kFcvtDWu: case Op::kFcvtDL: case Op::kFcvtDLu:
    case Op::kFmvDX: case Op::kFmvWX:
      return Shape::kFcvtFromX;
    case Op::kVsetvli: case Op::kVsetivli: case Op::kVsetvl:
      return Shape::kVset;
    case Op::kVle8: case Op::kVle16: case Op::kVle32: case Op::kVle64:
      return Shape::kVLoadUnit;
    case Op::kVlse8: case Op::kVlse16: case Op::kVlse32: case Op::kVlse64:
      return Shape::kVLoadStride;
    case Op::kVluxei8: case Op::kVluxei16: case Op::kVluxei32:
    case Op::kVluxei64:
      return Shape::kVLoadIndex;
    case Op::kVse8: case Op::kVse16: case Op::kVse32: case Op::kVse64:
      return Shape::kVStoreUnit;
    case Op::kVsse8: case Op::kVsse16: case Op::kVsse32: case Op::kVsse64:
      return Shape::kVStoreStride;
    case Op::kVsuxei8: case Op::kVsuxei16: case Op::kVsuxei32:
    case Op::kVsuxei64:
      return Shape::kVStoreIndex;
    case Op::kVaddVV: case Op::kVsubVV: case Op::kVandVV: case Op::kVorVV:
    case Op::kVxorVV: case Op::kVsllVV: case Op::kVsrlVV: case Op::kVsraVV:
    case Op::kVminuVV: case Op::kVminVV: case Op::kVmaxuVV: case Op::kVmaxVV:
    case Op::kVmulVV: case Op::kVdivVV: case Op::kVdivuVV: case Op::kVremVV:
    case Op::kVremuVV: case Op::kVmseqVV: case Op::kVmsneVV:
    case Op::kVmsltVV: case Op::kVmsltuVV: case Op::kVmsleVV:
    case Op::kVfaddVV: case Op::kVfsubVV: case Op::kVfmulVV:
    case Op::kVfdivVV: case Op::kVfminVV: case Op::kVfmaxVV:
    case Op::kVmergeVVM: case Op::kVrgatherVV:
      return Shape::kVArithVV;
    case Op::kVmvVV:
      return Shape::kVArithVV;  // vs2 field is 0; harmless extra source
    case Op::kVaddVX: case Op::kVsubVX: case Op::kVrsubVX: case Op::kVandVX:
    case Op::kVorVX: case Op::kVxorVX: case Op::kVsllVX: case Op::kVsrlVX:
    case Op::kVsraVX: case Op::kVmulVX: case Op::kVmseqVX: case Op::kVmsneVX:
    case Op::kVmsltVX: case Op::kVmsltuVX: case Op::kVmsleVX:
    case Op::kVmvVX: case Op::kVmergeVXM: case Op::kVslide1downVX:
    case Op::kVslidedownVX: case Op::kVslideupVX:
      return Shape::kVArithVX;
    case Op::kVaddVI: case Op::kVrsubVI: case Op::kVandVI: case Op::kVorVI:
    case Op::kVxorVI: case Op::kVsllVI: case Op::kVsrlVI: case Op::kVsraVI:
    case Op::kVmvVI: case Op::kVmseqVI: case Op::kVslidedownVI:
    case Op::kVslideupVI:
      return Shape::kVArithVI;
    case Op::kVmaccVV: case Op::kVfmaccVV: case Op::kVfnmaccVV:
    case Op::kVfmsacVV: case Op::kVfmaddVV:
      return Shape::kVMacVV;
    case Op::kVmaccVX:
      return Shape::kVMacVX;
    case Op::kVfmaccVF:
      return Shape::kVArithVF;  // reads vd too; handled in source_regs
    case Op::kVredsumVS: case Op::kVredmaxVS: case Op::kVredminVS:
    case Op::kVfredusumVS: case Op::kVfredosumVS: case Op::kVfredmaxVS:
    case Op::kVfredminVS:
      return Shape::kVRed;
    case Op::kVfaddVF: case Op::kVfsubVF: case Op::kVfmulVF:
      return Shape::kVArithVF;
    case Op::kVfmvVF:
      return Shape::kVMvVF;
    case Op::kVfmvFS:
      return Shape::kVMvFS;
    case Op::kVfmvSF:
      return Shape::kVMvSF;
    case Op::kVmvXS:
      return Shape::kVMvXS;
    case Op::kVmvSX:
      return Shape::kVMvSX;
    case Op::kVidV:
      return Shape::kVId;
    case Op::kOpCount:
      return Shape::kNone;
  }
  return Shape::kNone;
}

}  // namespace

std::vector<RegRef> source_regs(const DecodedInst& inst) {
  std::vector<RegRef> out;
  const Shape shape = shape_of(inst.op);
  switch (shape) {
    case Shape::kNone: case Shape::kUType: case Shape::kJal:
    case Shape::kCsrImm: case Shape::kVId:
      break;
    case Shape::kIArith: case Shape::kJalr: case Shape::kLoadX:
    case Shape::kLoadF: case Shape::kCsr: case Shape::kFcvtFromX:
    case Shape::kLr:
      push_x(out, inst.rs1);
      break;
    case Shape::kAmo:
      push_x(out, inst.rs1);
      push_x(out, inst.rs2);
      break;
    case Shape::kRArith: case Shape::kBranch:
      push_x(out, inst.rs1);
      push_x(out, inst.rs2);
      break;
    case Shape::kStoreX:
      push_x(out, inst.rs1);
      push_x(out, inst.rs2);
      break;
    case Shape::kStoreF:
      push_x(out, inst.rs1);
      push_f(out, inst.rs2);
      break;
    case Shape::kFArith2: case Shape::kFcmp:
      push_f(out, inst.rs1);
      push_f(out, inst.rs2);
      break;
    case Shape::kFArith1: case Shape::kFcvtToX:
      push_f(out, inst.rs1);
      break;
    case Shape::kFma:
      push_f(out, inst.rs1);
      push_f(out, inst.rs2);
      push_f(out, inst.rs3);
      break;
    case Shape::kVset:
      if (inst.op == Op::kVsetvli) push_x(out, inst.rs1);
      if (inst.op == Op::kVsetvl) {
        push_x(out, inst.rs1);
        push_x(out, inst.rs2);
      }
      break;
    case Shape::kVLoadUnit:
      push_x(out, inst.rs1);
      break;
    case Shape::kVLoadStride:
      push_x(out, inst.rs1);
      push_x(out, inst.rs2);
      break;
    case Shape::kVLoadIndex:
      push_x(out, inst.rs1);
      push_v(out, inst.rs2);
      break;
    case Shape::kVStoreUnit:
      push_x(out, inst.rs1);
      push_v(out, inst.rd);  // vs3 lives in the rd field
      break;
    case Shape::kVStoreStride:
      push_x(out, inst.rs1);
      push_x(out, inst.rs2);
      push_v(out, inst.rd);
      break;
    case Shape::kVStoreIndex:
      push_x(out, inst.rs1);
      push_v(out, inst.rs2);
      push_v(out, inst.rd);
      break;
    case Shape::kVArithVV:
      push_v(out, inst.rs1);
      push_v(out, inst.rs2);
      break;
    case Shape::kVArithVX:
      push_x(out, inst.rs1);
      push_v(out, inst.rs2);
      break;
    case Shape::kVArithVI:
      push_v(out, inst.rs2);
      break;
    case Shape::kVMacVV:
      push_v(out, inst.rs1);
      push_v(out, inst.rs2);
      push_v(out, inst.rd);
      break;
    case Shape::kVMacVX:
      push_x(out, inst.rs1);
      push_v(out, inst.rs2);
      push_v(out, inst.rd);
      break;
    case Shape::kVRed:
      push_v(out, inst.rs1);
      push_v(out, inst.rs2);
      break;
    case Shape::kVArithVF:
      push_f(out, inst.rs1);
      push_v(out, inst.rs2);
      if (inst.op == Op::kVfmaccVF) push_v(out, inst.rd);
      break;
    case Shape::kVMvVF: case Shape::kVMvSF:
      push_f(out, inst.rs1);
      break;
    case Shape::kVMvFS: case Shape::kVMvXS:
      push_v(out, inst.rs2);
      break;
    case Shape::kVMvSX:
      push_x(out, inst.rs1);
      break;
  }
  // A masked vector op additionally reads the mask register v0.
  if (is_vector(inst.op) && !inst.vm) push_v(out, 0);
  return out;
}

std::vector<RegRef> dest_regs(const DecodedInst& inst) {
  std::vector<RegRef> out;
  switch (shape_of(inst.op)) {
    case Shape::kNone: case Shape::kBranch: case Shape::kStoreX:
    case Shape::kStoreF: case Shape::kVStoreUnit: case Shape::kVStoreStride:
    case Shape::kVStoreIndex:
      break;
    case Shape::kRArith: case Shape::kIArith: case Shape::kUType:
    case Shape::kJal: case Shape::kJalr: case Shape::kLoadX:
    case Shape::kCsr: case Shape::kCsrImm: case Shape::kFcmp:
    case Shape::kFcvtToX: case Shape::kVset: case Shape::kVMvXS:
    case Shape::kAmo: case Shape::kLr:
      push_x(out, inst.rd);
      break;
    case Shape::kLoadF: case Shape::kFArith2: case Shape::kFArith1:
    case Shape::kFma: case Shape::kFcvtFromX: case Shape::kVMvFS:
      push_f(out, inst.rd);
      break;
    case Shape::kVLoadUnit: case Shape::kVLoadStride: case Shape::kVLoadIndex:
    case Shape::kVArithVV: case Shape::kVArithVX: case Shape::kVArithVI:
    case Shape::kVMacVV: case Shape::kVMacVX: case Shape::kVRed:
    case Shape::kVMvVF: case Shape::kVMvSF: case Shape::kVMvSX:
    case Shape::kVId: case Shape::kVArithVF:
      push_v(out, inst.rd);
      break;
  }
  return out;
}

const char* xreg_name(std::uint8_t index) {
  static constexpr const char* kNames[32] = {
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  return index < 32 ? kNames[index] : "x?";
}

const char* freg_name(std::uint8_t index) {
  static constexpr const char* kNames[32] = {
      "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6",  "ft7",
      "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4",  "fa5",
      "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6",  "fs7",
      "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"};
  return index < 32 ? kNames[index] : "f?";
}

}  // namespace coyote::isa
