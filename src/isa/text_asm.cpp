#include "isa/text_asm.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <sstream>
#include <unordered_map>

#include "isa/assembler.h"

namespace coyote::isa {
namespace {

std::string trim(const std::string& text) {
  const auto first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

std::string strip_comment(const std::string& line) {
  std::size_t cut = line.size();
  for (const char* marker : {"#", "//", ";"}) {
    const auto pos = line.find(marker);
    if (pos != std::string::npos) cut = std::min(cut, pos);
  }
  return line.substr(0, cut);
}

std::string lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return text;
}

/// Splits "a0, 8(sp)" -> {"a0", "8(sp)"}.
std::vector<std::string> split_operands(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      out.push_back(trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  const std::string tail = trim(current);
  if (!tail.empty()) out.push_back(tail);
  return out;
}

const std::unordered_map<std::string, Xreg>& xreg_table() {
  static const auto* table = [] {
    auto* map = new std::unordered_map<std::string, Xreg>;
    const char* names[32] = {"zero", "ra", "sp", "gp", "tp",  "t0",  "t1",
                             "t2",   "s0", "s1", "a0", "a1",  "a2",  "a3",
                             "a4",   "a5", "a6", "a7", "s2",  "s3",  "s4",
                             "s5",   "s6", "s7", "s8", "s9",  "s10", "s11",
                             "t3",   "t4", "t5", "t6"};
    for (unsigned i = 0; i < 32; ++i) {
      (*map)[names[i]] = static_cast<Xreg>(i);
      (*map)[strfmt("x%u", i)] = static_cast<Xreg>(i);
    }
    (*map)["fp"] = s0;
    return map;
  }();
  return *table;
}

const std::unordered_map<std::string, Freg>& freg_table() {
  static const auto* table = [] {
    auto* map = new std::unordered_map<std::string, Freg>;
    const char* names[32] = {"ft0", "ft1", "ft2",  "ft3",  "ft4", "ft5",
                             "ft6", "ft7", "fs0",  "fs1",  "fa0", "fa1",
                             "fa2", "fa3", "fa4",  "fa5",  "fa6", "fa7",
                             "fs2", "fs3", "fs4",  "fs5",  "fs6", "fs7",
                             "fs8", "fs9", "fs10", "fs11", "ft8", "ft9",
                             "ft10", "ft11"};
    for (unsigned i = 0; i < 32; ++i) {
      (*map)[names[i]] = static_cast<Freg>(i);
      (*map)[strfmt("f%u", i)] = static_cast<Freg>(i);
    }
    return map;
  }();
  return *table;
}

/// Per-line parse context handed to mnemonic handlers.
struct Ctx {
  Assembler& as;
  std::vector<std::string> ops;
  std::size_t line;
  std::function<Assembler::Label(const std::string&)> label_of;

  [[noreturn]] void fail(const std::string& message) const {
    throw AsmError(line, message);
  }
  void expect(std::size_t count) const {
    if (ops.size() != count) {
      fail(strfmt("expected %zu operands, got %zu", count, ops.size()));
    }
  }
  Xreg x(std::size_t i) const {
    const auto it = xreg_table().find(lower(ops.at(i)));
    if (it == xreg_table().end()) fail("bad integer register '" + ops[i] + "'");
    return it->second;
  }
  Freg f(std::size_t i) const {
    const auto it = freg_table().find(lower(ops.at(i)));
    if (it == freg_table().end()) fail("bad FP register '" + ops[i] + "'");
    return it->second;
  }
  Vreg v(std::size_t i) const {
    const std::string name = lower(ops.at(i));
    if (name.size() >= 2 && name[0] == 'v') {
      char* end = nullptr;
      const long index = std::strtol(name.c_str() + 1, &end, 10);
      if (*end == '\0' && index >= 0 && index < 32) {
        return static_cast<Vreg>(index);
      }
    }
    fail("bad vector register '" + ops[i] + "'");
  }
  std::int64_t imm(std::size_t i) const {
    const std::string text = trim(ops.at(i));
    try {
      std::size_t used = 0;
      const long long value = std::stoll(text, &used, 0);
      if (used != text.size()) fail("bad immediate '" + text + "'");
      return value;
    } catch (const AsmError&) {
      throw;
    } catch (const std::exception&) {
      fail("bad immediate '" + text + "'");
    }
  }
  /// Parses "off(reg)".
  std::pair<std::int32_t, Xreg> memref(std::size_t i) const {
    const std::string text = trim(ops.at(i));
    const auto open = text.find('(');
    const auto close = text.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      fail("bad memory operand '" + text + "' (want off(reg))");
    }
    const std::string off_text = trim(text.substr(0, open));
    std::int32_t offset = 0;
    if (!off_text.empty()) {
      try {
        offset = static_cast<std::int32_t>(std::stol(off_text, nullptr, 0));
      } catch (const std::exception&) {
        fail("bad offset '" + off_text + "'");
      }
    }
    const std::string reg = lower(trim(text.substr(open + 1,
                                                   close - open - 1)));
    const auto it = xreg_table().find(reg);
    if (it == xreg_table().end()) fail("bad base register '" + reg + "'");
    return {offset, it->second};
  }
  /// Parses "(reg)" (vector memory base).
  Xreg memref_base(std::size_t i) const { return memref(i).second; }
  Assembler::Label label(std::size_t i) const {
    return label_of(trim(ops.at(i)));
  }
  Sew sew(std::size_t i) const {
    const std::string text = lower(trim(ops.at(i)));
    if (text == "e8") return Sew::kE8;
    if (text == "e16") return Sew::kE16;
    if (text == "e32") return Sew::kE32;
    if (text == "e64") return Sew::kE64;
    fail("bad SEW '" + text + "'");
  }
  Lmul lmul(std::size_t i) const {
    const std::string text = lower(trim(ops.at(i)));
    if (text == "m1") return Lmul::kM1;
    if (text == "m2") return Lmul::kM2;
    if (text == "m4") return Lmul::kM4;
    if (text == "m8") return Lmul::kM8;
    fail("bad LMUL '" + text + "'");
  }
};

using Handler = std::function<void(Ctx&)>;

const std::unordered_map<std::string, Handler>& handlers() {
  static const auto* table = [] {
    auto* map = new std::unordered_map<std::string, Handler>;
    auto& h = *map;

    // ----- R-type x = x op x -----
    const auto rrr = [&h](const char* name,
                          void (Assembler::*fn)(Xreg, Xreg, Xreg)) {
      h[name] = [fn](Ctx& c) {
        c.expect(3);
        (c.as.*fn)(c.x(0), c.x(1), c.x(2));
      };
    };
    rrr("add", &Assembler::add);       rrr("sub", &Assembler::sub);
    rrr("sll", &Assembler::sll);       rrr("slt", &Assembler::slt);
    rrr("sltu", &Assembler::sltu);     rrr("xor", &Assembler::xor_);
    rrr("srl", &Assembler::srl);       rrr("sra", &Assembler::sra);
    rrr("or", &Assembler::or_);        rrr("and", &Assembler::and_);
    rrr("addw", &Assembler::addw);     rrr("subw", &Assembler::subw);
    rrr("sllw", &Assembler::sllw);     rrr("srlw", &Assembler::srlw);
    rrr("sraw", &Assembler::sraw);     rrr("mul", &Assembler::mul);
    rrr("mulh", &Assembler::mulh);     rrr("mulhu", &Assembler::mulhu);
    rrr("mulhsu", &Assembler::mulhsu); rrr("div", &Assembler::div);
    rrr("divu", &Assembler::divu);     rrr("rem", &Assembler::rem);
    rrr("remu", &Assembler::remu);     rrr("mulw", &Assembler::mulw);
    rrr("divw", &Assembler::divw);     rrr("divuw", &Assembler::divuw);
    rrr("remw", &Assembler::remw);     rrr("remuw", &Assembler::remuw);

    // ----- I-type x = x op imm -----
    const auto rri = [&h](const char* name,
                          void (Assembler::*fn)(Xreg, Xreg, std::int32_t)) {
      h[name] = [fn](Ctx& c) {
        c.expect(3);
        (c.as.*fn)(c.x(0), c.x(1), static_cast<std::int32_t>(c.imm(2)));
      };
    };
    rri("addi", &Assembler::addi);   rri("slti", &Assembler::slti);
    rri("sltiu", &Assembler::sltiu); rri("xori", &Assembler::xori);
    rri("ori", &Assembler::ori);     rri("andi", &Assembler::andi);
    rri("addiw", &Assembler::addiw);
    const auto shamt = [&h](const char* name,
                            void (Assembler::*fn)(Xreg, Xreg, unsigned)) {
      h[name] = [fn](Ctx& c) {
        c.expect(3);
        (c.as.*fn)(c.x(0), c.x(1), static_cast<unsigned>(c.imm(2)));
      };
    };
    shamt("slli", &Assembler::slli);   shamt("srli", &Assembler::srli);
    shamt("srai", &Assembler::srai);   shamt("slliw", &Assembler::slliw);
    shamt("srliw", &Assembler::srliw); shamt("sraiw", &Assembler::sraiw);

    // ----- loads/stores -----
    const auto load = [&h](const char* name,
                           void (Assembler::*fn)(Xreg, std::int32_t, Xreg)) {
      h[name] = [fn](Ctx& c) {
        c.expect(2);
        const auto [offset, base] = c.memref(1);
        (c.as.*fn)(c.x(0), offset, base);
      };
    };
    load("lb", &Assembler::lb);   load("lh", &Assembler::lh);
    load("lw", &Assembler::lw);   load("ld", &Assembler::ld);
    load("lbu", &Assembler::lbu); load("lhu", &Assembler::lhu);
    load("lwu", &Assembler::lwu);
    load("sb", &Assembler::sb);   load("sh", &Assembler::sh);
    load("sw", &Assembler::sw);   load("sd", &Assembler::sd);
    const auto fload = [&h](const char* name,
                            void (Assembler::*fn)(Freg, std::int32_t, Xreg)) {
      h[name] = [fn](Ctx& c) {
        c.expect(2);
        const auto [offset, base] = c.memref(1);
        (c.as.*fn)(c.f(0), offset, base);
      };
    };
    fload("flw", &Assembler::flw); fload("fld", &Assembler::fld);
    fload("fsw", &Assembler::fsw); fload("fsd", &Assembler::fsd);

    // ----- branches / jumps -----
    const auto branch = [&h](const char* name,
                             void (Assembler::*fn)(Xreg, Xreg,
                                                   Assembler::Label)) {
      h[name] = [fn](Ctx& c) {
        c.expect(3);
        (c.as.*fn)(c.x(0), c.x(1), c.label(2));
      };
    };
    branch("beq", &Assembler::beq);   branch("bne", &Assembler::bne);
    branch("blt", &Assembler::blt);   branch("bge", &Assembler::bge);
    branch("bltu", &Assembler::bltu); branch("bgeu", &Assembler::bgeu);
    branch("ble", &Assembler::ble);   branch("bgt", &Assembler::bgt);
    const auto branchz = [&h](const char* name,
                              void (Assembler::*fn)(Xreg,
                                                    Assembler::Label)) {
      h[name] = [fn](Ctx& c) {
        c.expect(2);
        (c.as.*fn)(c.x(0), c.label(1));
      };
    };
    branchz("beqz", &Assembler::beqz); branchz("bnez", &Assembler::bnez);
    branchz("blez", &Assembler::blez); branchz("bgtz", &Assembler::bgtz);
    h["j"] = [](Ctx& c) {
      c.expect(1);
      c.as.j(c.label(0));
    };
    h["jal"] = [](Ctx& c) {
      if (c.ops.size() == 1) {
        c.as.jal(ra, c.label(0));
      } else {
        c.expect(2);
        c.as.jal(c.x(0), c.label(1));
      }
    };
    h["jalr"] = [](Ctx& c) {
      if (c.ops.size() == 1) {
        c.as.jalr(ra, c.x(0), 0);
      } else {
        c.expect(2);
        const auto [offset, base] = c.memref(1);
        c.as.jalr(c.x(0), base, offset);
      }
    };
    h["call"] = [](Ctx& c) {
      c.expect(1);
      c.as.call(c.label(0));
    };
    h["ret"] = [](Ctx& c) {
      c.expect(0);
      c.as.ret();
    };

    // ----- pseudo -----
    h["li"] = [](Ctx& c) {
      c.expect(2);
      c.as.li(c.x(0), c.imm(1));
    };
    h["mv"] = [](Ctx& c) {
      c.expect(2);
      c.as.mv(c.x(0), c.x(1));
    };
    h["neg"] = [](Ctx& c) {
      c.expect(2);
      c.as.neg(c.x(0), c.x(1));
    };
    h["seqz"] = [](Ctx& c) {
      c.expect(2);
      c.as.seqz(c.x(0), c.x(1));
    };
    h["snez"] = [](Ctx& c) {
      c.expect(2);
      c.as.snez(c.x(0), c.x(1));
    };
    h["nop"] = [](Ctx& c) {
      c.expect(0);
      c.as.nop();
    };
    h["ecall"] = [](Ctx& c) {
      c.expect(0);
      c.as.ecall();
    };
    h["ebreak"] = [](Ctx& c) {
      c.expect(0);
      c.as.ebreak();
    };
    h["fence"] = [](Ctx& c) {
      (void)c;
      c.as.fence();
    };
    h["lui"] = [](Ctx& c) {
      c.expect(2);
      c.as.lui(c.x(0), static_cast<std::int32_t>(c.imm(1)));
    };
    h["auipc"] = [](Ctx& c) {
      c.expect(2);
      c.as.auipc(c.x(0), static_cast<std::int32_t>(c.imm(1)));
    };
    h["csrr"] = [](Ctx& c) {
      c.expect(2);
      c.as.csrr(c.x(0), static_cast<std::uint32_t>(c.imm(1)));
    };
    h["csrw"] = [](Ctx& c) {
      c.expect(2);
      c.as.csrw(static_cast<std::uint32_t>(c.imm(0)), c.x(1));
    };

    // ----- atomics -----
    const auto amo = [&h](const char* name,
                          void (Assembler::*fn)(Xreg, Xreg, Xreg)) {
      h[name] = [fn](Ctx& c) {
        c.expect(3);
        (c.as.*fn)(c.x(0), c.x(1), c.memref_base(2));
      };
    };
    amo("amoadd.d", &Assembler::amoadd_d);
    amo("amoadd.w", &Assembler::amoadd_w);
    amo("amoswap.d", &Assembler::amoswap_d);
    amo("amoswap.w", &Assembler::amoswap_w);
    amo("amoand.d", &Assembler::amoand_d);
    amo("amoor.d", &Assembler::amoor_d);
    amo("amoxor.d", &Assembler::amoxor_d);
    amo("amomin.d", &Assembler::amomin_d);
    amo("amomax.d", &Assembler::amomax_d);
    amo("amominu.d", &Assembler::amominu_d);
    amo("amomaxu.d", &Assembler::amomaxu_d);
    amo("sc.d", &Assembler::sc_d);
    amo("sc.w", &Assembler::sc_w);
    h["lr.d"] = [](Ctx& c) {
      c.expect(2);
      c.as.lr_d(c.x(0), c.memref_base(1));
    };
    h["lr.w"] = [](Ctx& c) {
      c.expect(2);
      c.as.lr_w(c.x(0), c.memref_base(1));
    };

    // ----- scalar FP -----
    const auto fff = [&h](const char* name,
                          void (Assembler::*fn)(Freg, Freg, Freg)) {
      h[name] = [fn](Ctx& c) {
        c.expect(3);
        (c.as.*fn)(c.f(0), c.f(1), c.f(2));
      };
    };
    fff("fadd.d", &Assembler::fadd_d); fff("fsub.d", &Assembler::fsub_d);
    fff("fmul.d", &Assembler::fmul_d); fff("fdiv.d", &Assembler::fdiv_d);
    fff("fmin.d", &Assembler::fmin_d); fff("fmax.d", &Assembler::fmax_d);
    fff("fsgnj.d", &Assembler::fsgnj_d);
    fff("fadd.s", &Assembler::fadd_s); fff("fsub.s", &Assembler::fsub_s);
    fff("fmul.s", &Assembler::fmul_s);
    h["fmadd.d"] = [](Ctx& c) {
      c.expect(4);
      c.as.fmadd_d(c.f(0), c.f(1), c.f(2), c.f(3));
    };
    h["fmsub.d"] = [](Ctx& c) {
      c.expect(4);
      c.as.fmsub_d(c.f(0), c.f(1), c.f(2), c.f(3));
    };
    h["fsqrt.d"] = [](Ctx& c) {
      c.expect(2);
      c.as.fsqrt_d(c.f(0), c.f(1));
    };
    h["fmv.d"] = [](Ctx& c) {
      c.expect(2);
      c.as.fmv_d(c.f(0), c.f(1));
    };
    h["fmv.d.x"] = [](Ctx& c) {
      c.expect(2);
      c.as.fmv_d_x(c.f(0), c.x(1));
    };
    h["fmv.x.d"] = [](Ctx& c) {
      c.expect(2);
      c.as.fmv_x_d(c.x(0), c.f(1));
    };
    h["fcvt.d.l"] = [](Ctx& c) {
      c.expect(2);
      c.as.fcvt_d_l(c.f(0), c.x(1));
    };
    h["fcvt.l.d"] = [](Ctx& c) {
      c.expect(2);
      c.as.fcvt_l_d(c.x(0), c.f(1));
    };
    h["feq.d"] = [](Ctx& c) {
      c.expect(3);
      c.as.feq_d(c.x(0), c.f(1), c.f(2));
    };
    h["flt.d"] = [](Ctx& c) {
      c.expect(3);
      c.as.flt_d(c.x(0), c.f(1), c.f(2));
    };
    h["fle.d"] = [](Ctx& c) {
      c.expect(3);
      c.as.fle_d(c.x(0), c.f(1), c.f(2));
    };

    // ----- vector -----
    h["vsetvli"] = [](Ctx& c) {
      // vsetvli rd, rs1, e64, m4 [, ta, ma] — tail/mask tokens ignored.
      if (c.ops.size() < 4) c.fail("vsetvli needs rd, rs1, eN, mN");
      c.as.vsetvli(c.x(0), c.x(1), c.sew(2), c.lmul(3));
    };
    const auto vmem = [&h](const char* name,
                           void (Assembler::*fn)(Vreg, Xreg, bool)) {
      h[name] = [fn](Ctx& c) {
        c.expect(2);
        (c.as.*fn)(c.v(0), c.memref_base(1), true);
      };
    };
    vmem("vle8.v", &Assembler::vle8);   vmem("vle16.v", &Assembler::vle16);
    vmem("vle32.v", &Assembler::vle32); vmem("vle64.v", &Assembler::vle64);
    vmem("vse8.v", &Assembler::vse8);   vmem("vse16.v", &Assembler::vse16);
    vmem("vse32.v", &Assembler::vse32); vmem("vse64.v", &Assembler::vse64);
    h["vlse64.v"] = [](Ctx& c) {
      c.expect(3);
      c.as.vlse64(c.v(0), c.memref_base(1), c.x(2));
    };
    h["vsse64.v"] = [](Ctx& c) {
      c.expect(3);
      c.as.vsse64(c.v(0), c.memref_base(1), c.x(2));
    };
    h["vluxei64.v"] = [](Ctx& c) {
      c.expect(3);
      c.as.vluxei64(c.v(0), c.memref_base(1), c.v(2));
    };
    h["vsuxei64.v"] = [](Ctx& c) {
      c.expect(3);
      c.as.vsuxei64(c.v(0), c.memref_base(1), c.v(2));
    };
    const auto vvv = [&h](const char* name,
                          void (Assembler::*fn)(Vreg, Vreg, Vreg, bool)) {
      h[name] = [fn](Ctx& c) {
        c.expect(3);
        (c.as.*fn)(c.v(0), c.v(1), c.v(2), true);
      };
    };
    vvv("vadd.vv", &Assembler::vadd_vv);
    vvv("vsub.vv", &Assembler::vsub_vv);
    vvv("vand.vv", &Assembler::vand_vv);
    vvv("vor.vv", &Assembler::vor_vv);
    vvv("vxor.vv", &Assembler::vxor_vv);
    vvv("vmul.vv", &Assembler::vmul_vv);
    vvv("vmacc.vv", &Assembler::vmacc_vv);
    vvv("vfadd.vv", &Assembler::vfadd_vv);
    vvv("vfsub.vv", &Assembler::vfsub_vv);
    vvv("vfmul.vv", &Assembler::vfmul_vv);
    vvv("vfmacc.vv", &Assembler::vfmacc_vv);
    vvv("vredsum.vs", &Assembler::vredsum_vs);
    vvv("vfredosum.vs", &Assembler::vfredosum_vs);
    vvv("vfredusum.vs", &Assembler::vfredusum_vs);
    h["vadd.vx"] = [](Ctx& c) {
      c.expect(3);
      c.as.vadd_vx(c.v(0), c.v(1), c.x(2));
    };
    h["vadd.vi"] = [](Ctx& c) {
      c.expect(3);
      c.as.vadd_vi(c.v(0), c.v(1), static_cast<std::int8_t>(c.imm(2)));
    };
    h["vsll.vi"] = [](Ctx& c) {
      c.expect(3);
      c.as.vsll_vi(c.v(0), c.v(1), static_cast<std::uint8_t>(c.imm(2)));
    };
    h["vmv.v.x"] = [](Ctx& c) {
      c.expect(2);
      c.as.vmv_v_x(c.v(0), c.x(1));
    };
    h["vmv.v.i"] = [](Ctx& c) {
      c.expect(2);
      c.as.vmv_v_i(c.v(0), static_cast<std::int8_t>(c.imm(1)));
    };
    h["vmv.x.s"] = [](Ctx& c) {
      c.expect(2);
      c.as.vmv_x_s(c.x(0), c.v(1));
    };
    h["vmv.s.x"] = [](Ctx& c) {
      c.expect(2);
      c.as.vmv_s_x(c.v(0), c.x(1));
    };
    h["vid.v"] = [](Ctx& c) {
      c.expect(1);
      c.as.vid_v(c.v(0));
    };
    h["vfmv.v.f"] = [](Ctx& c) {
      c.expect(2);
      c.as.vfmv_v_f(c.v(0), c.f(1));
    };
    h["vfmv.f.s"] = [](Ctx& c) {
      c.expect(2);
      c.as.vfmv_f_s(c.f(0), c.v(1));
    };
    h["vfmv.s.f"] = [](Ctx& c) {
      c.expect(2);
      c.as.vfmv_s_f(c.v(0), c.f(1));
    };
    h["vfmacc.vf"] = [](Ctx& c) {
      c.expect(3);
      c.as.vfmacc_vf(c.v(0), c.f(1), c.v(2), true);
    };
    h["vfmul.vf"] = [](Ctx& c) {
      c.expect(3);
      c.as.vfmul_vf(c.v(0), c.v(1), c.f(2), true);
    };

    return map;
  }();
  return *table;
}

bool is_valid_label(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_' &&
      name[0] != '.') {
    return false;
  }
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_' || c == '.';
  });
}

}  // namespace

AssembledText assemble_text(const std::string& source, Addr default_base) {
  // First pass: find an optional leading .org to fix the base.
  Addr base = default_base;
  {
    std::istringstream scan(source);
    std::string line;
    while (std::getline(scan, line)) {
      const std::string text = trim(strip_comment(line));
      if (text.empty()) continue;
      if (text.rfind(".org", 0) == 0) {
        base = static_cast<Addr>(std::stoull(trim(text.substr(4)), nullptr, 0));
      }
      break;
    }
  }

  Assembler as(base);
  AssembledText out;
  out.base = base;

  std::map<std::string, Assembler::Label> labels;
  const auto label_of = [&](const std::string& name) {
    if (!is_valid_label(name)) {
      throw SimError("bad label name '" + name + "'");
    }
    auto it = labels.find(name);
    if (it == labels.end()) {
      it = labels.emplace(name, as.make_label()).first;
    }
    return it->second;
  };

  std::istringstream stream(source);
  std::string raw_line;
  std::size_t line_number = 0;
  bool saw_code = false;
  while (std::getline(stream, raw_line)) {
    ++line_number;
    std::string text = trim(strip_comment(raw_line));
    // Labels (possibly several) at the start of the line.
    for (auto colon = text.find(':'); colon != std::string::npos;
         colon = text.find(':')) {
      const std::string name = trim(text.substr(0, colon));
      if (!is_valid_label(name)) break;  // not a label, maybe an operand
      try {
        as.bind(label_of(name));
      } catch (const SimError& error) {
        throw AsmError(line_number, error.what());
      }
      out.symbols[name] = as.pc();
      text = trim(text.substr(colon + 1));
    }
    if (text.empty()) continue;

    // Directives.
    if (text[0] == '.') {
      if (text.rfind(".org", 0) == 0) {
        if (saw_code) {
          throw AsmError(line_number, ".org must precede all code");
        }
        continue;  // handled in the pre-scan
      }
      if (text.rfind(".word", 0) == 0) {
        try {
          as.emit(static_cast<std::uint32_t>(
              std::stoull(trim(text.substr(5)), nullptr, 0)));
        } catch (const std::exception&) {
          throw AsmError(line_number, "bad .word value");
        }
        saw_code = true;
        continue;
      }
      throw AsmError(line_number, "unknown directive '" + text + "'");
    }

    // Instruction: mnemonic [operands].
    const auto space = text.find_first_of(" \t");
    const std::string mnemonic = lower(text.substr(0, space));
    const std::string operand_text =
        space == std::string::npos ? "" : text.substr(space + 1);
    const auto handler = handlers().find(mnemonic);
    if (handler == handlers().end()) {
      throw AsmError(line_number, "unknown mnemonic '" + mnemonic + "'");
    }
    Ctx ctx{as, split_operands(operand_text), line_number, label_of};
    try {
      handler->second(ctx);
    } catch (const AsmError&) {
      throw;
    } catch (const SimError& error) {
      throw AsmError(line_number, error.what());
    }
    saw_code = true;
  }

  try {
    out.words = as.finish();
  } catch (const SimError& error) {
    throw AsmError(line_number, std::string("at end: ") + error.what());
  }
  return out;
}

}  // namespace coyote::isa
