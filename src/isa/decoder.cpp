#include "isa/decoder.h"

#include "common/bits.h"

namespace coyote::isa {
namespace {

// Field extractors for the base instruction formats.
std::uint8_t rd_of(std::uint32_t w) { return bits(w, 11, 7); }
std::uint8_t rs1_of(std::uint32_t w) { return bits(w, 19, 15); }
std::uint8_t rs2_of(std::uint32_t w) { return bits(w, 24, 20); }
std::uint8_t rs3_of(std::uint32_t w) { return bits(w, 31, 27); }
std::uint32_t funct3_of(std::uint32_t w) { return bits(w, 14, 12); }
std::uint32_t funct7_of(std::uint32_t w) { return bits(w, 31, 25); }

std::int64_t imm_i(std::uint32_t w) { return sign_extend(bits(w, 31, 20), 12); }
std::int64_t imm_s(std::uint32_t w) {
  return sign_extend((bits(w, 31, 25) << 5) | bits(w, 11, 7), 12);
}
std::int64_t imm_b(std::uint32_t w) {
  const std::uint64_t imm = (bit(w, 31) << 12) | (bit(w, 7) << 11) |
                            (bits(w, 30, 25) << 5) | (bits(w, 11, 8) << 1);
  return sign_extend(imm, 13);
}
std::int64_t imm_u(std::uint32_t w) {
  return sign_extend(bits(w, 31, 12) << 12, 32);
}
std::int64_t imm_j(std::uint32_t w) {
  const std::uint64_t imm = (bit(w, 31) << 20) | (bits(w, 19, 12) << 12) |
                            (bit(w, 20) << 11) | (bits(w, 30, 21) << 1);
  return sign_extend(imm, 21);
}

DecodedInst make(Op op, std::uint32_t w) {
  DecodedInst inst;
  inst.op = op;
  inst.raw = w;
  inst.rd = rd_of(w);
  inst.rs1 = rs1_of(w);
  inst.rs2 = rs2_of(w);
  return inst;
}

DecodedInst illegal(std::uint32_t w) {
  DecodedInst inst;
  inst.op = Op::kIllegal;
  inst.raw = w;
  return inst;
}

DecodedInst decode_load(std::uint32_t w) {
  static constexpr Op kOps[8] = {Op::kLb,  Op::kLh,  Op::kLw,  Op::kLd,
                                 Op::kLbu, Op::kLhu, Op::kLwu, Op::kIllegal};
  DecodedInst inst = make(kOps[funct3_of(w)], w);
  inst.imm = imm_i(w);
  return inst.op == Op::kIllegal ? illegal(w) : inst;
}

DecodedInst decode_store(std::uint32_t w) {
  static constexpr Op kOps[8] = {Op::kSb,      Op::kSh,      Op::kSw,
                                 Op::kSd,      Op::kIllegal, Op::kIllegal,
                                 Op::kIllegal, Op::kIllegal};
  DecodedInst inst = make(kOps[funct3_of(w)], w);
  inst.imm = imm_s(w);
  return inst.op == Op::kIllegal ? illegal(w) : inst;
}

DecodedInst decode_branch(std::uint32_t w) {
  static constexpr Op kOps[8] = {Op::kBeq,     Op::kBne, Op::kIllegal,
                                 Op::kIllegal, Op::kBlt, Op::kBge,
                                 Op::kBltu,    Op::kBgeu};
  DecodedInst inst = make(kOps[funct3_of(w)], w);
  inst.imm = imm_b(w);
  return inst.op == Op::kIllegal ? illegal(w) : inst;
}

DecodedInst decode_op_imm(std::uint32_t w) {
  const auto funct3 = funct3_of(w);
  DecodedInst inst = make(Op::kIllegal, w);
  inst.imm = imm_i(w);
  switch (funct3) {
    case 0: inst.op = Op::kAddi; break;
    case 2: inst.op = Op::kSlti; break;
    case 3: inst.op = Op::kSltiu; break;
    case 4: inst.op = Op::kXori; break;
    case 6: inst.op = Op::kOri; break;
    case 7: inst.op = Op::kAndi; break;
    case 1:
      if (bits(w, 31, 26) != 0) return illegal(w);
      inst.op = Op::kSlli;
      inst.imm = bits(w, 25, 20);  // RV64 shamt is 6 bits
      break;
    case 5:
      if (bits(w, 31, 26) == 0x00) {
        inst.op = Op::kSrli;
      } else if (bits(w, 31, 26) == 0x10) {
        inst.op = Op::kSrai;
      } else {
        return illegal(w);
      }
      inst.imm = bits(w, 25, 20);
      break;
  }
  return inst;
}

DecodedInst decode_op_imm32(std::uint32_t w) {
  const auto funct3 = funct3_of(w);
  DecodedInst inst = make(Op::kIllegal, w);
  inst.imm = imm_i(w);
  switch (funct3) {
    case 0: inst.op = Op::kAddiw; break;
    case 1:
      if (funct7_of(w) != 0) return illegal(w);
      inst.op = Op::kSlliw;
      inst.imm = bits(w, 24, 20);
      break;
    case 5:
      if (funct7_of(w) == 0x00) {
        inst.op = Op::kSrliw;
      } else if (funct7_of(w) == 0x20) {
        inst.op = Op::kSraiw;
      } else {
        return illegal(w);
      }
      inst.imm = bits(w, 24, 20);
      break;
    default:
      return illegal(w);
  }
  return inst;
}

DecodedInst decode_op(std::uint32_t w) {
  const auto funct3 = funct3_of(w);
  const auto funct7 = funct7_of(w);
  Op op = Op::kIllegal;
  if (funct7 == 0x00) {
    static constexpr Op kOps[8] = {Op::kAdd, Op::kSll, Op::kSlt, Op::kSltu,
                                   Op::kXor, Op::kSrl, Op::kOr,  Op::kAnd};
    op = kOps[funct3];
  } else if (funct7 == 0x20) {
    if (funct3 == 0) op = Op::kSub;
    if (funct3 == 5) op = Op::kSra;
  } else if (funct7 == 0x01) {
    static constexpr Op kOps[8] = {Op::kMul,  Op::kMulh, Op::kMulhsu,
                                   Op::kMulhu, Op::kDiv, Op::kDivu,
                                   Op::kRem,  Op::kRemu};
    op = kOps[funct3];
  }
  return op == Op::kIllegal ? illegal(w) : make(op, w);
}

DecodedInst decode_op32(std::uint32_t w) {
  const auto funct3 = funct3_of(w);
  const auto funct7 = funct7_of(w);
  Op op = Op::kIllegal;
  if (funct7 == 0x00) {
    if (funct3 == 0) op = Op::kAddw;
    if (funct3 == 1) op = Op::kSllw;
    if (funct3 == 5) op = Op::kSrlw;
  } else if (funct7 == 0x20) {
    if (funct3 == 0) op = Op::kSubw;
    if (funct3 == 5) op = Op::kSraw;
  } else if (funct7 == 0x01) {
    if (funct3 == 0) op = Op::kMulw;
    if (funct3 == 4) op = Op::kDivw;
    if (funct3 == 5) op = Op::kDivuw;
    if (funct3 == 6) op = Op::kRemw;
    if (funct3 == 7) op = Op::kRemuw;
  }
  return op == Op::kIllegal ? illegal(w) : make(op, w);
}

DecodedInst decode_amo(std::uint32_t w) {
  const auto funct3 = funct3_of(w);
  if (funct3 != 2 && funct3 != 3) return illegal(w);
  const bool is_d = funct3 == 3;
  const auto funct5 = bits(w, 31, 27);
  Op op = Op::kIllegal;
  switch (funct5) {
    case 0x02:
      if (rs2_of(w) != 0) return illegal(w);
      op = is_d ? Op::kLrD : Op::kLrW;
      break;
    case 0x03: op = is_d ? Op::kScD : Op::kScW; break;
    case 0x01: op = is_d ? Op::kAmoswapD : Op::kAmoswapW; break;
    case 0x00: op = is_d ? Op::kAmoaddD : Op::kAmoaddW; break;
    case 0x04: op = is_d ? Op::kAmoxorD : Op::kAmoxorW; break;
    case 0x0C: op = is_d ? Op::kAmoandD : Op::kAmoandW; break;
    case 0x08: op = is_d ? Op::kAmoorD : Op::kAmoorW; break;
    case 0x10: op = is_d ? Op::kAmominD : Op::kAmominW; break;
    case 0x14: op = is_d ? Op::kAmomaxD : Op::kAmomaxW; break;
    case 0x18: op = is_d ? Op::kAmominuD : Op::kAmominuW; break;
    case 0x1C: op = is_d ? Op::kAmomaxuD : Op::kAmomaxuW; break;
    default: return illegal(w);
  }
  return make(op, w);  // aq/rl bits are accepted and ignored (strong model)
}

DecodedInst decode_system(std::uint32_t w) {
  const auto funct3 = funct3_of(w);
  if (funct3 == 0) {
    if (w == 0x00000073) return make(Op::kEcall, w);
    if (w == 0x00100073) return make(Op::kEbreak, w);
    return illegal(w);
  }
  static constexpr Op kOps[8] = {Op::kIllegal, Op::kCsrrw,  Op::kCsrrs,
                                 Op::kCsrrc,   Op::kIllegal, Op::kCsrrwi,
                                 Op::kCsrrsi,  Op::kCsrrci};
  DecodedInst inst = make(kOps[funct3], w);
  if (inst.op == Op::kIllegal) return illegal(w);
  inst.imm = static_cast<std::int64_t>(bits(w, 31, 20));  // CSR address
  inst.uimm = inst.rs1;  // zimm for the *i forms
  return inst;
}

// Vector memory: opcode LOAD-FP/STORE-FP with width in {0,5,6,7};
// mop selects unit-stride / indexed / strided.
DecodedInst decode_vmem(std::uint32_t w, bool is_load_op) {
  const auto width = funct3_of(w);
  const auto mop = bits(w, 27, 26);
  const auto nf = bits(w, 31, 29);
  if (nf != 0) return illegal(w);  // segment loads unsupported
  int size_index;  // 0->8b, 1->16b, 2->32b, 3->64b
  switch (width) {
    case 0: size_index = 0; break;
    case 5: size_index = 1; break;
    case 6: size_index = 2; break;
    case 7: size_index = 3; break;
    default: return illegal(w);
  }
  static constexpr Op kUnitLoad[4] = {Op::kVle8, Op::kVle16, Op::kVle32,
                                      Op::kVle64};
  static constexpr Op kUnitStore[4] = {Op::kVse8, Op::kVse16, Op::kVse32,
                                       Op::kVse64};
  static constexpr Op kStridedLoad[4] = {Op::kVlse8, Op::kVlse16, Op::kVlse32,
                                         Op::kVlse64};
  static constexpr Op kStridedStore[4] = {Op::kVsse8, Op::kVsse16,
                                          Op::kVsse32, Op::kVsse64};
  static constexpr Op kIndexedLoad[4] = {Op::kVluxei8, Op::kVluxei16,
                                         Op::kVluxei32, Op::kVluxei64};
  static constexpr Op kIndexedStore[4] = {Op::kVsuxei8, Op::kVsuxei16,
                                          Op::kVsuxei32, Op::kVsuxei64};
  Op op = Op::kIllegal;
  switch (mop) {
    case 0:  // unit-stride; lumop/sumop (rs2 field) must be 0
      if (rs2_of(w) != 0) return illegal(w);
      op = is_load_op ? kUnitLoad[size_index] : kUnitStore[size_index];
      break;
    case 1:  // indexed-unordered
      op = is_load_op ? kIndexedLoad[size_index] : kIndexedStore[size_index];
      break;
    case 2:  // strided
      op = is_load_op ? kStridedLoad[size_index] : kStridedStore[size_index];
      break;
    default:
      return illegal(w);  // indexed-ordered unsupported
  }
  DecodedInst inst = make(op, w);
  inst.vm = bit(w, 25) != 0;
  return inst;
}

DecodedInst decode_load_fp(std::uint32_t w) {
  const auto width = funct3_of(w);
  if (width == 2 || width == 3) {
    DecodedInst inst = make(width == 2 ? Op::kFlw : Op::kFld, w);
    inst.imm = imm_i(w);
    return inst;
  }
  return decode_vmem(w, /*is_load_op=*/true);
}

DecodedInst decode_store_fp(std::uint32_t w) {
  const auto width = funct3_of(w);
  if (width == 2 || width == 3) {
    DecodedInst inst = make(width == 2 ? Op::kFsw : Op::kFsd, w);
    inst.imm = imm_s(w);
    return inst;
  }
  return decode_vmem(w, /*is_load_op=*/false);
}

DecodedInst decode_op_fp(std::uint32_t w) {
  const auto funct7 = funct7_of(w);
  const auto funct3 = funct3_of(w);
  const auto rs2 = rs2_of(w);
  Op op = Op::kIllegal;
  switch (funct7) {
    case 0x00: op = Op::kFaddS; break;
    case 0x01: op = Op::kFaddD; break;
    case 0x04: op = Op::kFsubS; break;
    case 0x05: op = Op::kFsubD; break;
    case 0x08: op = Op::kFmulS; break;
    case 0x09: op = Op::kFmulD; break;
    case 0x0C: op = Op::kFdivS; break;
    case 0x0D: op = Op::kFdivD; break;
    case 0x2D:
      if (rs2 == 0) op = Op::kFsqrtD;
      break;
    case 0x11:
      if (funct3 == 0) op = Op::kFsgnjD;
      if (funct3 == 1) op = Op::kFsgnjnD;
      if (funct3 == 2) op = Op::kFsgnjxD;
      break;
    case 0x15:
      if (funct3 == 0) op = Op::kFminD;
      if (funct3 == 1) op = Op::kFmaxD;
      break;
    case 0x51:
      if (funct3 == 2) op = Op::kFeqD;
      if (funct3 == 1) op = Op::kFltD;
      if (funct3 == 0) op = Op::kFleD;
      break;
    case 0x61:
      if (rs2 == 0) op = Op::kFcvtWD;
      if (rs2 == 1) op = Op::kFcvtWuD;
      if (rs2 == 2) op = Op::kFcvtLD;
      if (rs2 == 3) op = Op::kFcvtLuD;
      break;
    case 0x69:
      if (rs2 == 0) op = Op::kFcvtDW;
      if (rs2 == 1) op = Op::kFcvtDWu;
      if (rs2 == 2) op = Op::kFcvtDL;
      if (rs2 == 3) op = Op::kFcvtDLu;
      break;
    case 0x21:
      if (rs2 == 0) op = Op::kFcvtDS;
      break;
    case 0x20:
      if (rs2 == 1) op = Op::kFcvtSD;
      break;
    case 0x71:
      if (rs2 == 0 && funct3 == 0) op = Op::kFmvXD;
      break;
    case 0x79:
      if (rs2 == 0 && funct3 == 0) op = Op::kFmvDX;
      break;
    case 0x70:
      if (rs2 == 0 && funct3 == 0) op = Op::kFmvXW;
      break;
    case 0x78:
      if (rs2 == 0 && funct3 == 0) op = Op::kFmvWX;
      break;
  }
  return op == Op::kIllegal ? illegal(w) : make(op, w);
}

DecodedInst decode_fma(std::uint32_t w, Op d_op) {
  // Only the double-precision (fmt=01) forms are supported.
  if (bits(w, 26, 25) != 1) return illegal(w);
  DecodedInst inst = make(d_op, w);
  inst.rs3 = rs3_of(w);
  return inst;
}

DecodedInst decode_vsetcfg(std::uint32_t w) {
  DecodedInst inst = make(Op::kIllegal, w);
  if (bit(w, 31) == 0) {
    inst.op = Op::kVsetvli;
    inst.imm = static_cast<std::int64_t>(bits(w, 30, 20));  // vtype imm
  } else if (bits(w, 31, 30) == 3) {
    inst.op = Op::kVsetivli;
    inst.imm = static_cast<std::int64_t>(bits(w, 29, 20));
    inst.uimm = rs1_of(w);  // AVL as immediate
  } else if (bits(w, 31, 25) == 0x40) {
    inst.op = Op::kVsetvl;
  } else {
    return illegal(w);
  }
  return inst;
}

struct VArithEntry {
  std::uint8_t funct6;
  Op op;
};

// OPIVV (funct3=0) / OPIVX (4) / OPIVI (3) tables.
constexpr VArithEntry kOpIVV[] = {
    {0x00, Op::kVaddVV},   {0x02, Op::kVsubVV},   {0x04, Op::kVminuVV},
    {0x05, Op::kVminVV},   {0x06, Op::kVmaxuVV},  {0x07, Op::kVmaxVV},
    {0x09, Op::kVandVV},   {0x0A, Op::kVorVV},    {0x0B, Op::kVxorVV},
    {0x0C, Op::kVrgatherVV},
    {0x17, Op::kVmvVV},    {0x18, Op::kVmseqVV},  {0x19, Op::kVmsneVV},
    {0x1A, Op::kVmsltuVV}, {0x1B, Op::kVmsltVV},  {0x1D, Op::kVmsleVV},
    {0x25, Op::kVsllVV},   {0x28, Op::kVsrlVV},   {0x29, Op::kVsraVV},
};
constexpr VArithEntry kOpIVX[] = {
    {0x00, Op::kVaddVX},   {0x02, Op::kVsubVX},  {0x03, Op::kVrsubVX},
    {0x09, Op::kVandVX},   {0x0A, Op::kVorVX},   {0x0B, Op::kVxorVX},
    {0x0E, Op::kVslideupVX},
    {0x0F, Op::kVslidedownVX},
    {0x17, Op::kVmvVX},    {0x18, Op::kVmseqVX}, {0x19, Op::kVmsneVX},
    {0x1A, Op::kVmsltuVX}, {0x1B, Op::kVmsltVX}, {0x1D, Op::kVmsleVX},
    {0x25, Op::kVsllVX},   {0x28, Op::kVsrlVX},  {0x29, Op::kVsraVX},
};
constexpr VArithEntry kOpIVI[] = {
    {0x00, Op::kVaddVI}, {0x03, Op::kVrsubVI}, {0x09, Op::kVandVI},
    {0x0A, Op::kVorVI},  {0x0B, Op::kVxorVI},  {0x0F, Op::kVslidedownVI},
    {0x0E, Op::kVslideupVI},
    {0x17, Op::kVmvVI},  {0x18, Op::kVmseqVI}, {0x25, Op::kVsllVI},
    {0x28, Op::kVsrlVI}, {0x29, Op::kVsraVI},
};
constexpr VArithEntry kOpMVV[] = {
    {0x00, Op::kVredsumVS}, {0x05, Op::kVredminVS}, {0x07, Op::kVredmaxVS},
    {0x20, Op::kVdivuVV},   {0x21, Op::kVdivVV},    {0x22, Op::kVremuVV},
    {0x23, Op::kVremVV},    {0x25, Op::kVmulVV},    {0x2D, Op::kVmaccVV},
};
constexpr VArithEntry kOpMVX[] = {
    {0x0F, Op::kVslide1downVX},
    {0x25, Op::kVmulVX},
    {0x2D, Op::kVmaccVX},
};
constexpr VArithEntry kOpFVV[] = {
    {0x00, Op::kVfaddVV},     {0x01, Op::kVfredusumVS},
    {0x02, Op::kVfsubVV},     {0x03, Op::kVfredosumVS},
    {0x04, Op::kVfminVV},     {0x05, Op::kVfredminVS},
    {0x06, Op::kVfmaxVV},     {0x07, Op::kVfredmaxVS},
    {0x20, Op::kVfdivVV},     {0x24, Op::kVfmulVV},
    {0x28, Op::kVfmaddVV},    {0x2C, Op::kVfmaccVV},
    {0x2D, Op::kVfnmaccVV},   {0x2E, Op::kVfmsacVV},
};
constexpr VArithEntry kOpFVF[] = {
    {0x00, Op::kVfaddVF}, {0x02, Op::kVfsubVF}, {0x24, Op::kVfmulVF},
    {0x2C, Op::kVfmaccVF},
};

Op lookup_varith(const VArithEntry* table, std::size_t count,
                 std::uint8_t funct6) {
  for (std::size_t i = 0; i < count; ++i) {
    if (table[i].funct6 == funct6) return table[i].op;
  }
  return Op::kIllegal;
}

DecodedInst decode_op_v(std::uint32_t w) {
  const auto funct3 = funct3_of(w);
  if (funct3 == 7) return decode_vsetcfg(w);

  const std::uint8_t funct6 = bits(w, 31, 26);
  const bool vm = bit(w, 25) != 0;
  Op op = Op::kIllegal;
  switch (funct3) {
    case 0:  // OPIVV
      op = lookup_varith(kOpIVV, std::size(kOpIVV), funct6);
      if (funct6 == 0x17 && !vm) op = Op::kVmergeVVM;
      break;
    case 3:  // OPIVI
      op = lookup_varith(kOpIVI, std::size(kOpIVI), funct6);
      break;
    case 4:  // OPIVX
      op = lookup_varith(kOpIVX, std::size(kOpIVX), funct6);
      if (funct6 == 0x17 && !vm) op = Op::kVmergeVXM;
      break;
    case 2:  // OPMVV
      if (funct6 == 0x10) {
        // VWXUNARY0: vmv.x.s when vs1 == 0.
        op = (rs1_of(w) == 0) ? Op::kVmvXS : Op::kIllegal;
      } else if (funct6 == 0x14) {
        // VMUNARY0: vid.v when vs1 == 0b10001.
        op = (rs1_of(w) == 0x11) ? Op::kVidV : Op::kIllegal;
      } else {
        op = lookup_varith(kOpMVV, std::size(kOpMVV), funct6);
      }
      break;
    case 6:  // OPMVX
      if (funct6 == 0x10) {
        op = (rs2_of(w) == 0) ? Op::kVmvSX : Op::kIllegal;
      } else {
        op = lookup_varith(kOpMVX, std::size(kOpMVX), funct6);
      }
      break;
    case 1:  // OPFVV
      if (funct6 == 0x10) {
        op = (rs1_of(w) == 0) ? Op::kVfmvFS : Op::kIllegal;
      } else {
        op = lookup_varith(kOpFVV, std::size(kOpFVV), funct6);
      }
      break;
    case 5:  // OPFVF
      if (funct6 == 0x10) {
        op = (rs2_of(w) == 0) ? Op::kVfmvSF : Op::kIllegal;
      } else if (funct6 == 0x17 && vm) {
        op = Op::kVfmvVF;
      } else {
        op = lookup_varith(kOpFVF, std::size(kOpFVF), funct6);
      }
      break;
  }
  if (op == Op::kIllegal) return illegal(w);
  DecodedInst inst = make(op, w);
  inst.vm = vm;
  // OPIVI: rs1 field carries a 5-bit signed immediate; vsll/vsrl/vsra take
  // it unsigned. Keep the signed value; the executor masks for shifts.
  if (funct3 == 3) inst.imm = sign_extend(rs1_of(w), 5);
  return inst;
}

}  // namespace

DecodedInst decode(std::uint32_t w) {
  // Only 32-bit (non-compressed) encodings are supported: low 2 bits == 11.
  if ((w & 0x3) != 0x3) return illegal(w);
  switch (bits(w, 6, 0)) {
    case 0x37: {
      DecodedInst inst = make(Op::kLui, w);
      inst.imm = imm_u(w);
      return inst;
    }
    case 0x17: {
      DecodedInst inst = make(Op::kAuipc, w);
      inst.imm = imm_u(w);
      return inst;
    }
    case 0x6F: {
      DecodedInst inst = make(Op::kJal, w);
      inst.imm = imm_j(w);
      return inst;
    }
    case 0x67: {
      if (funct3_of(w) != 0) return illegal(w);
      DecodedInst inst = make(Op::kJalr, w);
      inst.imm = imm_i(w);
      return inst;
    }
    case 0x63: return decode_branch(w);
    case 0x03: return decode_load(w);
    case 0x23: return decode_store(w);
    case 0x13: return decode_op_imm(w);
    case 0x1B: return decode_op_imm32(w);
    case 0x33: return decode_op(w);
    case 0x3B: return decode_op32(w);
    case 0x0F:
      return make(funct3_of(w) == 1 ? Op::kFenceI : Op::kFence, w);
    case 0x2F: return decode_amo(w);
    case 0x73: return decode_system(w);
    case 0x07: return decode_load_fp(w);
    case 0x27: return decode_store_fp(w);
    case 0x53: return decode_op_fp(w);
    case 0x43: return decode_fma(w, Op::kFmaddD);
    case 0x47: return decode_fma(w, Op::kFmsubD);
    case 0x4B: return decode_fma(w, Op::kFnmsubD);
    case 0x4F: return decode_fma(w, Op::kFnmaddD);
    case 0x57: return decode_op_v(w);
    default: return illegal(w);
  }
}

}  // namespace coyote::isa
