// Architectural register numbers and RISC-V ABI names.
#pragma once

#include <cstdint>

namespace coyote::isa {

/// Integer (x) registers, by ABI name.
enum Xreg : std::uint8_t {
  zero = 0,
  ra = 1,
  sp = 2,
  gp = 3,
  tp = 4,
  t0 = 5,
  t1 = 6,
  t2 = 7,
  s0 = 8,
  fp = 8,  // alias of s0
  s1 = 9,
  a0 = 10,
  a1 = 11,
  a2 = 12,
  a3 = 13,
  a4 = 14,
  a5 = 15,
  a6 = 16,
  a7 = 17,
  s2 = 18,
  s3 = 19,
  s4 = 20,
  s5 = 21,
  s6 = 22,
  s7 = 23,
  s8 = 24,
  s9 = 25,
  s10 = 26,
  s11 = 27,
  t3 = 28,
  t4 = 29,
  t5 = 30,
  t6 = 31,
};

/// Floating-point (f) registers, by ABI name.
enum Freg : std::uint8_t {
  ft0 = 0,
  ft1 = 1,
  ft2 = 2,
  ft3 = 3,
  ft4 = 4,
  ft5 = 5,
  ft6 = 6,
  ft7 = 7,
  fs0 = 8,
  fs1 = 9,
  fa0 = 10,
  fa1 = 11,
  fa2 = 12,
  fa3 = 13,
  fa4 = 14,
  fa5 = 15,
  fa6 = 16,
  fa7 = 17,
  fs2 = 18,
  fs3 = 19,
  fs4 = 20,
  fs5 = 21,
  fs6 = 22,
  fs7 = 23,
  fs8 = 24,
  fs9 = 25,
  fs10 = 26,
  fs11 = 27,
  ft8 = 28,
  ft9 = 29,
  ft10 = 30,
  ft11 = 31,
};

/// Vector (v) registers.
enum Vreg : std::uint8_t {
  v0 = 0,
  v1 = 1,
  v2 = 2,
  v3 = 3,
  v4 = 4,
  v5 = 5,
  v6 = 6,
  v7 = 7,
  v8 = 8,
  v9 = 9,
  v10 = 10,
  v11 = 11,
  v12 = 12,
  v13 = 13,
  v14 = 14,
  v15 = 15,
  v16 = 16,
  v17 = 17,
  v18 = 18,
  v19 = 19,
  v20 = 20,
  v21 = 21,
  v22 = 22,
  v23 = 23,
  v24 = 24,
  v25 = 25,
  v26 = 26,
  v27 = 27,
  v28 = 28,
  v29 = 29,
  v30 = 30,
  v31 = 31,
};

/// The three architectural register files.
enum class RegFile : std::uint8_t { kX, kF, kV };

/// A reference to one architectural register, used for dependency tracking.
struct RegRef {
  RegFile file;
  std::uint8_t index;

  friend bool operator==(const RegRef&, const RegRef&) = default;
};

const char* xreg_name(std::uint8_t index);
const char* freg_name(std::uint8_t index);

}  // namespace coyote::isa
