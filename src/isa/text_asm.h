// Text assembler: translates a GNU-as-style RISC-V source listing into
// machine words using the programmatic Assembler underneath. Lets users run
// hand-written kernels through coyote_sim without a cross-toolchain.
//
// Supported subset (one instruction per line):
//   * labels ("loop:"), comments ("#", "//", ";"), blank lines
//   * .org ADDR (sets the base before any code), .word IMM32
//   * RV64IMA, the D-extension scalar FP set the simulator executes,
//     common pseudo-instructions (li/mv/j/ret/call/nop/beqz/bnez/...),
//     and the vector subset (vsetvli e8..e64/m1..m8, loads/stores,
//     arithmetic, reductions, moves)
//   * registers by ABI name (a0, t3, fs2, v8, ...) or x0..x31/f0..f31
//   * immediates in decimal or 0x hex, branch targets by label
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace coyote::isa {

/// Raised with a line number and message on any parse/encode problem.
class AsmError : public SimError {
 public:
  AsmError(std::size_t line, const std::string& message)
      : SimError(strfmt("line %zu: %s", line, message.c_str())),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct AssembledText {
  Addr base = 0;
  std::vector<std::uint32_t> words;
  std::map<std::string, Addr> symbols;  ///< label -> address
};

/// Assembles `source`; code is placed at `default_base` unless the source
/// starts with a .org directive.
AssembledText assemble_text(const std::string& source,
                            Addr default_base = 0x10000);

}  // namespace coyote::isa
