#include "isa/disasm.h"

#include "common/error.h"

namespace coyote::isa {

namespace {

std::string vreg(std::uint8_t index) { return strfmt("v%u", index); }

std::string mask_suffix(const DecodedInst& inst) {
  return inst.vm ? "" : ", v0.t";
}

}  // namespace

std::string disassemble(const DecodedInst& inst) {
  const std::string name = op_name(inst.op);
  const char* rd = xreg_name(inst.rd);
  const char* rs1 = xreg_name(inst.rs1);
  const char* rs2 = xreg_name(inst.rs2);
  const long long imm = static_cast<long long>(inst.imm);

  switch (inst.op) {
    case Op::kIllegal:
      return strfmt("illegal 0x%08x", inst.raw);
    case Op::kLui:
    case Op::kAuipc:
      return strfmt("%s %s, 0x%llx", name.c_str(), rd,
                    static_cast<unsigned long long>(
                        (static_cast<std::uint64_t>(inst.imm) >> 12) &
                        0xFFFFF));
    case Op::kJal:
      return strfmt("%s %s, %lld", name.c_str(), rd, imm);
    case Op::kJalr:
      return strfmt("%s %s, %lld(%s)", name.c_str(), rd, imm, rs1);
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
      return strfmt("%s %s, %s, %lld", name.c_str(), rs1, rs2, imm);
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
    case Op::kLbu: case Op::kLhu: case Op::kLwu:
      return strfmt("%s %s, %lld(%s)", name.c_str(), rd, imm, rs1);
    case Op::kFlw: case Op::kFld:
      return strfmt("%s %s, %lld(%s)", name.c_str(), freg_name(inst.rd), imm,
                    rs1);
    case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd:
      return strfmt("%s %s, %lld(%s)", name.c_str(), rs2, imm, rs1);
    case Op::kFsw: case Op::kFsd:
      return strfmt("%s %s, %lld(%s)", name.c_str(), freg_name(inst.rs2), imm,
                    rs1);
    case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
    case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
    case Op::kSrai: case Op::kAddiw: case Op::kSlliw: case Op::kSrliw:
    case Op::kSraiw:
      return strfmt("%s %s, %s, %lld", name.c_str(), rd, rs1, imm);
    case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
      return strfmt("%s %s, 0x%llx, %s", name.c_str(), rd,
                    static_cast<unsigned long long>(inst.imm), rs1);
    case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci:
      return strfmt("%s %s, 0x%llx, %u", name.c_str(), rd,
                    static_cast<unsigned long long>(inst.imm), inst.uimm);
    case Op::kFence: case Op::kFenceI: case Op::kEcall: case Op::kEbreak:
      return name;
    case Op::kFmaddD: case Op::kFmsubD: case Op::kFnmsubD: case Op::kFnmaddD:
      return strfmt("%s %s, %s, %s, %s", name.c_str(), freg_name(inst.rd),
                    freg_name(inst.rs1), freg_name(inst.rs2),
                    freg_name(inst.rs3));
    case Op::kVsetvli:
      return strfmt("%s %s, %s, 0x%llx", name.c_str(), rd, rs1,
                    static_cast<unsigned long long>(inst.imm));
    case Op::kVsetivli:
      return strfmt("%s %s, %u, 0x%llx", name.c_str(), rd, inst.uimm,
                    static_cast<unsigned long long>(inst.imm));
    case Op::kVle8: case Op::kVle16: case Op::kVle32: case Op::kVle64:
    case Op::kVse8: case Op::kVse16: case Op::kVse32: case Op::kVse64:
      return strfmt("%s %s, (%s)%s", name.c_str(), vreg(inst.rd).c_str(), rs1,
                    mask_suffix(inst).c_str());
    case Op::kVlse8: case Op::kVlse16: case Op::kVlse32: case Op::kVlse64:
    case Op::kVsse8: case Op::kVsse16: case Op::kVsse32: case Op::kVsse64:
      return strfmt("%s %s, (%s), %s%s", name.c_str(), vreg(inst.rd).c_str(),
                    rs1, rs2, mask_suffix(inst).c_str());
    case Op::kVluxei8: case Op::kVluxei16: case Op::kVluxei32:
    case Op::kVluxei64: case Op::kVsuxei8: case Op::kVsuxei16:
    case Op::kVsuxei32: case Op::kVsuxei64:
      return strfmt("%s %s, (%s), %s%s", name.c_str(), vreg(inst.rd).c_str(),
                    rs1, vreg(inst.rs2).c_str(), mask_suffix(inst).c_str());
    default:
      break;
  }

  if (is_vector(inst.op)) {
    // Generic vector-arithmetic rendering: vd, vs2, {vs1|rs1|imm}.
    const std::string vd = vreg(inst.rd);
    const std::string vs2 = vreg(inst.rs2);
    if (name.size() > 3 && name.substr(name.size() - 3) == ".vx") {
      return strfmt("%s %s, %s, %s%s", name.c_str(), vd.c_str(), vs2.c_str(),
                    rs1, mask_suffix(inst).c_str());
    }
    if (name.size() > 3 && name.substr(name.size() - 3) == ".vi") {
      return strfmt("%s %s, %s, %lld%s", name.c_str(), vd.c_str(),
                    vs2.c_str(), imm, mask_suffix(inst).c_str());
    }
    if (name.size() > 3 && name.substr(name.size() - 3) == ".vf") {
      return strfmt("%s %s, %s, %s%s", name.c_str(), vd.c_str(), vs2.c_str(),
                    freg_name(inst.rs1), mask_suffix(inst).c_str());
    }
    return strfmt("%s %s, %s, %s%s", name.c_str(), vd.c_str(), vs2.c_str(),
                  vreg(inst.rs1).c_str(), mask_suffix(inst).c_str());
  }
  if (is_fp(inst.op)) {
    return strfmt("%s %s, %s, %s", name.c_str(), freg_name(inst.rd),
                  freg_name(inst.rs1), freg_name(inst.rs2));
  }
  return strfmt("%s %s, %s, %s", name.c_str(), rd, rs1, rs2);
}

}  // namespace coyote::isa
