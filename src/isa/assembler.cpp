#include "isa/assembler.h"

#include "common/bits.h"

namespace coyote::isa {

void Assembler::bind(Label label) {
  if (label.id_ >= labels_.size()) {
    throw SimError("Assembler: bind of a foreign label");
  }
  if (labels_[label.id_] != kUnbound) {
    throw SimError("Assembler: label bound twice");
  }
  labels_[label.id_] = pc();
}

void Assembler::branch(std::uint32_t funct3, Xreg rs1, Xreg rs2,
                       Label target) {
  if (target.id_ >= labels_.size()) {
    throw SimError("Assembler: branch to a foreign label");
  }
  const std::size_t index = words_.size();
  if (labels_[target.id_] != kUnbound) {
    emit(encode::b_type(0x63, funct3, rs1, rs2,
                        static_cast<std::int32_t>(
                            offset_to(labels_[target.id_], index))));
  } else {
    fixups_.push_back(Fixup{index, target.id_, /*is_jal=*/false});
    emit(encode::b_type(0x63, funct3, rs1, rs2, 0));
  }
}

void Assembler::jal(Xreg rd, Label target) {
  if (target.id_ >= labels_.size()) {
    throw SimError("Assembler: jump to a foreign label");
  }
  const std::size_t index = words_.size();
  if (labels_[target.id_] != kUnbound) {
    emit(encode::j_type(0x6F, rd,
                        static_cast<std::int32_t>(
                            offset_to(labels_[target.id_], index))));
  } else {
    fixups_.push_back(Fixup{index, target.id_, /*is_jal=*/true});
    emit(encode::j_type(0x6F, rd, 0));
  }
}

const std::vector<std::uint32_t>& Assembler::finish() {
  for (const Fixup& fixup : fixups_) {
    const std::uint64_t target = labels_[fixup.label_id];
    if (target == kUnbound) {
      throw SimError("Assembler: finish() with an unbound label");
    }
    const auto offset =
        static_cast<std::int32_t>(offset_to(target, fixup.word_index));
    std::uint32_t& word = words_[fixup.word_index];
    if (fixup.is_jal) {
      if (offset < -(1 << 20) || offset >= (1 << 20)) {
        throw SimError("Assembler: jal offset out of range");
      }
      word = encode::j_type(0x6F, bits(word, 11, 7), offset);
    } else {
      if (offset < -(1 << 12) || offset >= (1 << 12)) {
        throw SimError("Assembler: branch offset out of range");
      }
      // Rebuild, preserving opcode/funct3/rs1/rs2.
      word = encode::b_type(0x63, bits(word, 14, 12), bits(word, 19, 15),
                            bits(word, 24, 20), offset);
    }
  }
  fixups_.clear();
  return words_;
}

void Assembler::li(Xreg rd, std::int64_t value) {
  if (rd == zero) return;
  if (value >= -2048 && value < 2048) {
    addi(rd, zero, static_cast<std::int32_t>(value));
    return;
  }
  if (value >= INT64_C(-0x80000000) && value <= INT64_C(0x7FFFFFFF)) {
    const auto lo12 = static_cast<std::int32_t>(sign_extend(
        static_cast<std::uint64_t>(value) & 0xFFF, 12));
    const auto hi20 = static_cast<std::int32_t>(
        (static_cast<std::uint32_t>(value - lo12) >> 12) & 0xFFFFF);
    lui(rd, hi20);
    if (lo12 != 0) addiw(rd, rd, lo12);
    return;
  }
  // General case: materialize the upper bits, shift, add 12 bits.
  const auto lo12 = static_cast<std::int32_t>(
      sign_extend(static_cast<std::uint64_t>(value) & 0xFFF, 12));
  const std::int64_t hi = (value - lo12) >> 12;
  li(rd, hi);
  slli(rd, rd, 12);
  if (lo12 != 0) addi(rd, rd, lo12);
}

}  // namespace coyote::isa
