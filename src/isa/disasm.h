// Human-readable rendering of decoded instructions, used in logs, traces and
// test diagnostics.
#pragma once

#include <string>

#include "isa/inst.h"

namespace coyote::isa {

/// Renders e.g. "addi a0, a0, 16" or "vle64.v v8, (a1)".
std::string disassemble(const DecodedInst& inst);

}  // namespace coyote::isa
