// Decoded-instruction representation shared by the decoder, the executor and
// the disassembler. Coyote supports RV64IMFD plus the subset of the vector
// extension (v1.0) exercised by HPC kernels; see DESIGN.md §5 for the exact
// coverage.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/registers.h"

namespace coyote::isa {

/// Every instruction mnemonic Coyote can decode and execute.
enum class Op : std::uint16_t {
  kIllegal = 0,

  // --- RV64I ---
  kLui,
  kAuipc,
  kJal,
  kJalr,
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kLb,
  kLh,
  kLw,
  kLd,
  kLbu,
  kLhu,
  kLwu,
  kSb,
  kSh,
  kSw,
  kSd,
  kAddi,
  kSlti,
  kSltiu,
  kXori,
  kOri,
  kAndi,
  kSlli,
  kSrli,
  kSrai,
  kAdd,
  kSub,
  kSll,
  kSlt,
  kSltu,
  kXor,
  kSrl,
  kSra,
  kOr,
  kAnd,
  kAddiw,
  kSlliw,
  kSrliw,
  kSraiw,
  kAddw,
  kSubw,
  kSllw,
  kSrlw,
  kSraw,
  kFence,
  kFenceI,
  kEcall,
  kEbreak,

  // --- RV64A (atomics) ---
  kLrW,
  kLrD,
  kScW,
  kScD,
  kAmoswapW,
  kAmoswapD,
  kAmoaddW,
  kAmoaddD,
  kAmoxorW,
  kAmoxorD,
  kAmoandW,
  kAmoandD,
  kAmoorW,
  kAmoorD,
  kAmominW,
  kAmominD,
  kAmomaxW,
  kAmomaxD,
  kAmominuW,
  kAmominuD,
  kAmomaxuW,
  kAmomaxuD,

  // --- Zicsr ---
  kCsrrw,
  kCsrrs,
  kCsrrc,
  kCsrrwi,
  kCsrrsi,
  kCsrrci,

  // --- RV64M ---
  kMul,
  kMulh,
  kMulhsu,
  kMulhu,
  kDiv,
  kDivu,
  kRem,
  kRemu,
  kMulw,
  kDivw,
  kDivuw,
  kRemw,
  kRemuw,

  // --- RV64F/D (load/store + D arithmetic + minimal S arithmetic) ---
  kFlw,
  kFld,
  kFsw,
  kFsd,
  kFaddD,
  kFsubD,
  kFmulD,
  kFdivD,
  kFsqrtD,
  kFsgnjD,
  kFsgnjnD,
  kFsgnjxD,
  kFminD,
  kFmaxD,
  kFaddS,
  kFsubS,
  kFmulS,
  kFdivS,
  kFmaddD,
  kFmsubD,
  kFnmsubD,
  kFnmaddD,
  kFeqD,
  kFltD,
  kFleD,
  kFcvtWD,
  kFcvtWuD,
  kFcvtLD,
  kFcvtLuD,
  kFcvtDW,
  kFcvtDWu,
  kFcvtDL,
  kFcvtDLu,
  kFcvtDS,
  kFcvtSD,
  kFmvXD,
  kFmvDX,
  kFmvXW,
  kFmvWX,

  // --- V: configuration ---
  kVsetvli,
  kVsetivli,
  kVsetvl,

  // --- V: memory (unit-stride / strided / indexed-unordered) ---
  kVle8,
  kVle16,
  kVle32,
  kVle64,
  kVse8,
  kVse16,
  kVse32,
  kVse64,
  kVlse8,
  kVlse16,
  kVlse32,
  kVlse64,
  kVsse8,
  kVsse16,
  kVsse32,
  kVsse64,
  kVluxei8,
  kVluxei16,
  kVluxei32,
  kVluxei64,
  kVsuxei8,
  kVsuxei16,
  kVsuxei32,
  kVsuxei64,

  // --- V: integer arithmetic ---
  kVaddVV,
  kVaddVX,
  kVaddVI,
  kVsubVV,
  kVsubVX,
  kVrsubVX,
  kVrsubVI,
  kVandVV,
  kVandVX,
  kVandVI,
  kVorVV,
  kVorVX,
  kVorVI,
  kVxorVV,
  kVxorVX,
  kVxorVI,
  kVsllVV,
  kVsllVX,
  kVsllVI,
  kVsrlVV,
  kVsrlVX,
  kVsrlVI,
  kVsraVV,
  kVsraVX,
  kVsraVI,
  kVminuVV,
  kVminVV,
  kVmaxuVV,
  kVmaxVV,
  kVmulVV,
  kVmulVX,
  kVmaccVV,
  kVmaccVX,
  kVdivVV,
  kVdivuVV,
  kVremVV,
  kVremuVV,
  kVmvVV,
  kVmvVX,
  kVmvVI,
  kVmergeVVM,
  kVmergeVXM,
  kVidV,
  kVmvXS,
  kVmvSX,
  kVslide1downVX,
  kVslidedownVX,
  kVslidedownVI,
  kVslideupVX,
  kVslideupVI,
  kVrgatherVV,

  // --- V: integer compares (write mask registers) ---
  kVmseqVV,
  kVmseqVX,
  kVmseqVI,
  kVmsneVV,
  kVmsneVX,
  kVmsltVV,
  kVmsltVX,
  kVmsltuVV,
  kVmsltuVX,
  kVmsleVV,
  kVmsleVX,

  // --- V: integer reductions ---
  kVredsumVS,
  kVredmaxVS,
  kVredminVS,

  // --- V: floating point ---
  kVfaddVV,
  kVfaddVF,
  kVfsubVV,
  kVfsubVF,
  kVfmulVV,
  kVfmulVF,
  kVfdivVV,
  kVfmaccVV,
  kVfmaccVF,
  kVfnmaccVV,
  kVfmsacVV,
  kVfmaddVV,
  kVfminVV,
  kVfmaxVV,
  kVfmvVF,
  kVfmvFS,
  kVfmvSF,
  kVfredusumVS,
  kVfredosumVS,
  kVfredmaxVS,
  kVfredminVS,

  kOpCount,
};

/// One decoded instruction. `imm` carries the sign-extended immediate for
/// I/S/B/U/J formats, the CSR address for Zicsr ops, the shift amount for
/// shifts, the vtype immediate for vsetvli, and the 5-bit simm for OPIVI
/// vector forms.
struct DecodedInst {
  Op op = Op::kIllegal;
  std::uint32_t raw = 0;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t rs3 = 0;    ///< FMA only
  std::int64_t imm = 0;
  bool vm = true;          ///< vector-mask bit (true = unmasked)
  std::uint8_t uimm = 0;   ///< vsetivli AVL / rounding-mode field

  friend bool operator==(const DecodedInst&, const DecodedInst&) = default;
};

/// Instruction attribute queries used by the ISS and dependency tracking.
bool is_load(Op op);          ///< scalar or vector load
bool is_store(Op op);         ///< scalar or vector store
bool is_amo(Op op);           ///< read-modify-write (LR/SC/AMO*)
bool is_vector(Op op);        ///< any OP-V / vector-memory instruction
bool is_branch_or_jump(Op op);
bool is_fp(Op op);            ///< touches the f register file

/// Registers the instruction reads (for RAW-dependency tracking). Includes
/// x, f and v sources; excludes x0.
std::vector<RegRef> source_regs(const DecodedInst& inst);

/// Registers the instruction writes. Excludes x0.
std::vector<RegRef> dest_regs(const DecodedInst& inst);

/// Mnemonic text ("addi", "vle64.v", ...).
const char* op_name(Op op);

}  // namespace coyote::isa
