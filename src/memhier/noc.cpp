#include "memhier/noc.h"

#include "common/binio.h"
#include "memhier/mesh_router.h"

namespace coyote::memhier {

Noc::Noc(simfw::Unit* parent, const NocConfig& config, std::uint32_t num_tiles,
         std::uint32_t num_mcs, std::uint32_t line_bytes)
    : simfw::Unit(parent, "noc"),
      config_(config),
      num_tiles_(num_tiles),
      num_mcs_(num_mcs),
      line_bytes_(line_bytes),
      messages_(stats().counter("messages", "messages traversing the NoC")),
      hops_(stats().counter("hops", "total router hops (mesh models)")) {
  if (config_.model == NocModel::kIdealCrossbar) return;
  if (config_.mesh_width == 0) {
    throw ConfigError("Noc: mesh_width must be nonzero");
  }
  const std::uint32_t nodes = num_tiles_ + num_mcs_;
  mesh_height_ = config_.mesh_height != 0
                     ? config_.mesh_height
                     : (nodes + config_.mesh_width - 1) / config_.mesh_width;
  if (!contended()) return;
  if (static_cast<std::uint64_t>(config_.mesh_width) * mesh_height_ < nodes) {
    throw ConfigError(strfmt(
        "Noc: topo.mesh=%ux%u seats %u nodes but the machine has %u "
        "(%u tiles + %u MCs) — enlarge the mesh or use topo.mesh=auto",
        config_.mesh_width, mesh_height_,
        config_.mesh_width * mesh_height_, nodes, num_tiles_, num_mcs_));
  }
  if (config_.flit_bytes == 0) {
    throw ConfigError("Noc: flit_bytes must be nonzero");
  }
  if (config_.mesh_router_latency == 0) {
    throw ConfigError("Noc: mesh_router_latency must be >= 1 for noc.model=mesh");
  }
  const std::uint32_t max_flits =
      flits_for(kMsgHeaderBytes + line_bytes_, config_.flit_bytes);
  if (config_.buffer_flits != 0 && config_.buffer_flits < max_flits) {
    throw ConfigError(strfmt(
        "Noc: buffer_flits=%u cannot hold a full data message (%u flits of "
        "%u bytes) — raise it or use 0 for infinite buffers",
        config_.buffer_flits, max_flits, config_.flit_bytes));
  }
  MeshRouterNet::Config net_config;
  net_config.width = config_.mesh_width;
  net_config.height = mesh_height_;
  net_config.router_latency = config_.mesh_router_latency;
  net_config.hop_latency = config_.mesh_hop_latency;
  net_config.link_bandwidth = config_.link_bandwidth;
  net_config.buffer_flits = config_.buffer_flits;
  net_ = std::make_unique<MeshRouterNet>(&scheduler(), net_config, stats());
}

Noc::~Noc() = default;

Cycle Noc::traverse(std::uint32_t src, std::uint32_t dst) {
  if (contended()) {
    throw SimError(
        "Noc: traverse() called on the contended mesh — use transmit()");
  }
  ++messages_;
  if (config_.model == NocModel::kIdealCrossbar) {
    return config_.crossbar_latency;
  }
  const std::uint32_t nhops = manhattan(src, dst);
  hops_ += nhops;
  return config_.mesh_router_latency +
         config_.mesh_hop_latency * static_cast<Cycle>(nhops);
}

void Noc::transmit(std::uint32_t src, std::uint32_t dst, std::uint32_t bytes,
                   Cycle pre_delay, CoreId core,
                   std::function<void()> deliver) {
  if (!contended()) {
    throw SimError("Noc: transmit() requires noc.model=mesh");
  }
  ++messages_;
  const std::uint32_t nhops = manhattan(src, dst);
  if (nhops != 0) hops_ += nhops;
  net_->inject(src, dst, flits_for(bytes, config_.flit_bytes), pre_delay,
               core, std::move(deliver));
}

void Noc::set_congestion_sink(
    std::function<void(Cycle, CoreId, std::uint64_t)> sink) {
  if (net_) net_->set_congestion_sink(std::move(sink));
}

bool Noc::quiescent() const { return net_ == nullptr || net_->quiescent(); }

void Noc::save_state(BinWriter& w) const {
  if (net_) net_->save_state(w);
}

void Noc::load_state(BinReader& r) {
  if (net_) net_->load_state(r);
}

std::string Noc::summary_json() const {
  if (!contended()) {
    throw SimError("Noc: summary_json() requires noc.model=mesh");
  }
  const auto find = [this](const char* name) {
    return stats().find_counter(name).get();
  };
  return strfmt(
      "{\"model\": \"mesh\", \"width\": %u, \"height\": %u, \"links\": %u, "
      "\"delivered\": %llu, \"flits\": %llu, \"wait_cycles\": %llu, "
      "\"peak_queue_flits\": %llu}",
      config_.mesh_width, mesh_height_, net_->num_links(),
      static_cast<unsigned long long>(find("delivered")),
      static_cast<unsigned long long>(find("flits")),
      static_cast<unsigned long long>(find("wait_cycles")),
      static_cast<unsigned long long>(find("peak_queue_flits")));
}

}  // namespace coyote::memhier
