#include "memhier/l2bank.h"

#include <algorithm>
#include <optional>

#include "common/binio.h"

namespace coyote::memhier {

L2Bank::L2Bank(simfw::Unit* parent, std::string name, BankId bank_id,
               TileId tile, const L2BankConfig& config, Noc* noc,
               const McMapper* mc_mapper)
    : simfw::Unit(parent, std::move(name)),
      bank_id_(bank_id),
      tile_(tile),
      config_(config),
      array_(CacheArray::Config{config.size_bytes, config.ways,
                                config.line_bytes, config.replacement}),
      noc_(noc),
      mc_mapper_(mc_mapper),
      cpu_req_in_(this, "cpu_req_in"),
      cpu_resp_out_(this, "cpu_resp_out"),
      mem_resp_in_(this, "mem_resp_in"),
      accesses_(stats().counter("accesses", "requests looked up in this bank")),
      hits_(stats().counter("hits", "lookups that hit")),
      misses_(stats().counter("misses", "lookups that missed")),
      merged_misses_(
          stats().counter("merged_misses", "misses merged into an MSHR")),
      mshr_stalls_(
          stats().counter("mshr_stalls", "requests queued: MSHRs exhausted")),
      writebacks_in_(
          stats().counter("writebacks_in", "dirty L1 evictions received")),
      writebacks_out_(
          stats().counter("writebacks_out", "dirty lines written to memory")),
      evictions_(stats().counter("evictions", "lines displaced by fills")),
      prefetches_issued_(
          stats().counter("prefetches_issued", "prefetch fills requested")),
      prefetches_useful_(stats().counter(
          "prefetches_useful", "prefetched lines later hit by a demand")) {
  if (noc_ == nullptr || mc_mapper_ == nullptr) {
    throw ConfigError("L2Bank: needs a NoC and an MC mapper");
  }
  if (config.coherent) {
    directory_ = std::make_unique<Directory>(config.num_cores);
    if (config.cores_per_tile == 0) {
      throw ConfigError("L2Bank: coherent mode needs cores_per_tile");
    }
    coh_invalidations_ = &stats().counter(
        "coh_invalidations", "kInv probes sent to L1s");
    coh_downgrades_ = &stats().counter(
        "coh_downgrades", "kDowngrade probes sent to L1s");
    coh_dirty_acks_ = &stats().counter(
        "coh_dirty_acks", "probe acks that returned dirty data");
    coh_serialized_ = &stats().counter(
        "coh_serialized", "requests queued behind a same-line transaction");
  }
  mem_req_out_.reserve(mc_mapper_->num_mcs());
  for (McId mc = 0; mc < mc_mapper_->num_mcs(); ++mc) {
    mem_req_out_.push_back(std::make_unique<simfw::DataOutPort<MemRequest>>(
        this, strfmt("mem_req_out%u", mc)));
  }
  cpu_req_in_.register_handler(
      [this](const MemRequest& request) { on_cpu_request(request); });
  mem_resp_in_.register_handler(
      [this](const MemResponse& response) { on_mem_response(response); });

  stats().statistic("miss_rate", "misses / accesses", [this]() {
    const double accesses = static_cast<double>(accesses_.get());
    return accesses == 0 ? 0.0 : static_cast<double>(misses_.get()) / accesses;
  });
}

void L2Bank::respond(const MemRequest& request, Cycle delay) {
  MemResponse response{request.line_addr, request.op, request.core};
  if (noc_->contended()) {
    std::optional<MemRequest> promoted;
    if (directory_ != nullptr &&
        (request.op == MemOp::kGetS || request.op == MemOp::kGetM)) {
      response.grant = directory_->complete(request, promoted);
    }
    deliver_response_mesh(response, noc_->tile_node(request.src_tile), delay,
                          /*attempt=*/0, std::move(promoted));
    return;
  }
  const Cycle total = delay + noc_->traverse(noc_->tile_node(tile_),
                                             noc_->tile_node(request.src_tile));
  if (directory_ != nullptr &&
      (request.op == MemOp::kGetS || request.op == MemOp::kGetM)) {
    std::optional<MemRequest> next;
    response.grant = directory_->complete(request, next);
    if (next.has_value()) {
      // The promoted transaction may probe the core this response grants
      // the line to; starting it only once the grant has landed keeps L1
      // state and directory state consistent (a probe can never overtake
      // its fill).
      scheduler().schedule(total, simfw::SchedPriority::kUpdate,
                           [this, promoted = *next]() {
                             start_probe_phase(promoted);
                           });
    }
  }
  deliver_response(response, total, /*attempt=*/0);
}

void L2Bank::deliver_response(const MemResponse& response, Cycle delay,
                              std::uint32_t attempt) {
  if (fault_hooks_ != nullptr) {
    const NetVerdict verdict =
        fault_hooks_->on_response_send(response, bank_id_, attempt);
    if (verdict.drop) {
      if (attempt < fault_retries_) {
        // Sender-side timeout + retransmit with exponential backoff. The
        // engine never drops attempts > 0, so the protocol is bounded.
        ++fault_retransmits_;
        const Cycle backoff = fault_backoff_ << attempt;
        scheduler().schedule(delay + backoff, simfw::SchedPriority::kUpdate,
                             [this, response, delay, attempt]() {
                               deliver_response(response, delay, attempt + 1);
                             });
      } else {
        // Retries exhausted (or disabled): the message is gone. The waiting
        // core never unblocks — exactly the wedge the liveness watchdog is
        // there to catch.
        ++fault_lost_messages_;
      }
      return;
    }
    delay += verdict.delay;
  }
  cpu_resp_out_.send(response, delay);
}

void L2Bank::deliver_response_mesh(const MemResponse& response,
                                   std::uint32_t dst_node, Cycle delay,
                                   std::uint32_t attempt,
                                   std::optional<MemRequest> promoted) {
  if (fault_hooks_ != nullptr) {
    const NetVerdict verdict =
        fault_hooks_->on_response_send(response, bank_id_, attempt);
    if (verdict.drop) {
      if (attempt < fault_retries_) {
        ++fault_retransmits_;
        const Cycle backoff = fault_backoff_ << attempt;
        scheduler().schedule(delay + backoff, simfw::SchedPriority::kUpdate,
                             [this, response, dst_node, delay, attempt,
                              promoted = std::move(promoted)]() {
                               deliver_response_mesh(response, dst_node, delay,
                                                     attempt + 1, promoted);
                             });
      } else {
        ++fault_lost_messages_;
        // The grant is gone, but the directory transaction it unblocked
        // must still start (at the uncontended arrival estimate) or every
        // later request on the line wedges behind it — mirroring the
        // fixed-latency path, which schedules the promoted transaction
        // independently of the grant's fate.
        if (promoted.has_value()) {
          scheduler().schedule(
              delay + noc_->latency(noc_->tile_node(tile_), dst_node),
              simfw::SchedPriority::kUpdate,
              [this, p = *promoted]() { start_probe_phase(p); });
        }
      }
      return;
    }
    delay += verdict.delay;
  }
  noc_->transmit(noc_->tile_node(tile_), dst_node,
                 noc_->message_bytes(response), delay, response.core,
                 [this, response, promoted = std::move(promoted)]() {
                   cpu_resp_out_.deliver_now(response);
                   if (promoted.has_value()) {
                     // Same ordering contract as the fixed-latency path:
                     // the probe phase starts in the update phase of the
                     // cycle the grant landed, never before it.
                     scheduler().schedule(
                         0, simfw::SchedPriority::kUpdate,
                         [this, p = *promoted]() { start_probe_phase(p); });
                   }
                 });
}

void L2Bank::start_probe_phase(const MemRequest& request) {
  std::vector<Directory::Probe> probes;
  if (directory_->activate(request, probes) == Directory::Action::kProceed) {
    data_path(request);
    return;
  }
  for (const Directory::Probe& probe : probes) {
    send_probe(probe, request.line_addr);
  }
}

void L2Bank::send_probe(const Directory::Probe& probe, Addr line_addr) {
  ++(probe.to_shared ? *coh_downgrades_ : *coh_invalidations_);
  const TileId target_tile = probe.target / config_.cores_per_tile;
  const MemResponse message{line_addr,
                            probe.to_shared ? MemOp::kDowngrade : MemOp::kInv,
                            probe.target};
  if (noc_->contended()) {
    deliver_response_mesh(message, noc_->tile_node(target_tile), 0,
                          /*attempt=*/0, std::nullopt);
    return;
  }
  deliver_response(
      message,
      noc_->traverse(noc_->tile_node(tile_), noc_->tile_node(target_tile)),
      /*attempt=*/0);
}

void L2Bank::on_coh_ack(const MemRequest& request) {
  if (request.dirty_data) {
    // The probed L1 copy was dirty: the data comes home with the ack, as a
    // writeback folded into the same message.
    ++*coh_dirty_acks_;
    ++writebacks_in_;
    if (!array_.mark_dirty(request.line_addr)) {
      ++writebacks_out_;
      forward_to_mc(MemRequest{request.line_addr, MemOp::kWriteback,
                               kInvalidCore, tile_, bank_id_},
                    0);
    }
  }
  if (const auto ready = directory_->ack(request.line_addr)) {
    data_path(*ready);
  }
}

void L2Bank::forward_to_mc(const MemRequest& request, Cycle extra_delay) {
  const McId mc = mc_mapper_->mc_of(request.line_addr);
  MemRequest forwarded = request;
  forwarded.src_bank = bank_id_;
  forwarded.src_tile = tile_;
  if (noc_->contended()) {
    auto* port = mem_req_out_[mc].get();
    noc_->transmit(noc_->tile_node(tile_), noc_->mc_node(mc),
                   noc_->message_bytes(forwarded), extra_delay,
                   forwarded.core,
                   [port, forwarded]() { port->deliver_now(forwarded); });
    return;
  }
  mem_req_out_[mc]->send(
      forwarded,
      extra_delay + noc_->traverse(noc_->tile_node(tile_), noc_->mc_node(mc)));
}

void L2Bank::on_cpu_request(const MemRequest& request) {
  if (request.op == MemOp::kWriteback) {
    ++writebacks_in_;
    if (directory_ != nullptr && request.core != kInvalidCore) {
      directory_->on_writeback(request.line_addr, request.core);
    }
    if (!array_.mark_dirty(request.line_addr)) {
      // Non-inclusive hierarchy: the L2 copy is gone; push the data home.
      ++writebacks_out_;
      forward_to_mc(request, 0);
    }
    return;
  }
  if (request.op == MemOp::kInvAck || request.op == MemOp::kWbAck) {
    on_coh_ack(request);
    return;
  }
  if (directory_ != nullptr &&
      (request.op == MemOp::kGetS || request.op == MemOp::kGetM)) {
    std::vector<Directory::Probe> probes;
    if (directory_->submit(request, probes) == Directory::Action::kProceed) {
      data_path(request);
      return;
    }
    if (probes.empty()) {
      ++*coh_serialized_;  // queued behind the line's active transaction
      return;
    }
    for (const Directory::Probe& probe : probes) {
      send_probe(probe, request.line_addr);
    }
    return;
  }
  data_path(request);
}

void L2Bank::data_path(const MemRequest& request) {
  if (array_.lookup(request.line_addr)) {
    ++accesses_;
    ++hits_;
    if (const auto it = prefetched_.find(request.line_addr);
        it != prefetched_.end()) {
      ++prefetches_useful_;
      prefetched_.erase(it);
    }
    respond(request, config_.hit_latency);
    return;
  }

  if (const auto it = mshrs_.find(request.line_addr); it != mshrs_.end()) {
    ++accesses_;
    ++misses_;
    ++merged_misses_;
    if (it->second.prefetch_only) {
      // A demand caught up with an in-flight prefetch: partially useful.
      it->second.prefetch_only = false;
      ++prefetches_useful_;
    }
    it->second.waiters.push_back(request);
    return;
  }
  if (mshrs_.size() >= config_.mshrs) {
    // Queued requests are not yet counted as accesses; they are re-run (and
    // then counted) when an MSHR frees up.
    ++mshr_stalls_;
    pending_.push_back(request);
    return;
  }
  ++accesses_;
  ++misses_;
  Mshr& mshr = mshrs_[request.line_addr];
  mshr.prefetch_only = false;
  mshr.waiters.push_back(request);
  forward_to_mc(request, config_.miss_latency);
  maybe_prefetch(request.line_addr);
}

void L2Bank::maybe_prefetch(Addr line_addr) {
  if (config_.prefetch == PrefetchPolicy::kNone) return;
  const Addr stride = config_.prefetch_stride_bytes != 0
                          ? config_.prefetch_stride_bytes
                          : config_.line_bytes;
  for (std::uint32_t ahead = 1; ahead <= config_.prefetch_degree; ++ahead) {
    const Addr candidate = line_addr + static_cast<Addr>(ahead) * stride;
    if (array_.probe(candidate)) continue;
    if (mshrs_.count(candidate) != 0) continue;
    if (mshrs_.size() >= config_.mshrs) return;  // never starve demands
    mshrs_[candidate];  // prefetch_only stays true, no waiters
    ++prefetches_issued_;
    forward_to_mc(MemRequest{candidate, MemOp::kPrefetch, kInvalidCore,
                             tile_, bank_id_},
                  config_.miss_latency);
  }
}

void L2Bank::on_mem_response(const MemResponse& response) {
  const auto it = mshrs_.find(response.line_addr);
  if (it == mshrs_.end()) {
    throw SimError(strfmt("%s: memory response for line 0x%llx with no MSHR",
                          path().c_str(),
                          static_cast<unsigned long long>(response.line_addr)));
  }
  const Mshr mshr = std::move(it->second);
  mshrs_.erase(it);

  const auto evicted = array_.insert(response.line_addr, /*dirty=*/false);
  if (mshr.prefetch_only) prefetched_.insert(response.line_addr);
  if (evicted.valid) {
    ++evictions_;
    prefetched_.erase(evicted.line_addr);
    if (evicted.dirty) {
      ++writebacks_out_;
      forward_to_mc(MemRequest{evicted.line_addr, MemOp::kWriteback,
                               kInvalidCore, tile_, bank_id_},
                    0);
    }
  }

  for (const MemRequest& waiter : mshr.waiters) {
    respond(waiter, 0);
  }

  // MSHR(s) freed up: drain the input queue while capacity lasts. Draining
  // must continue past requests that now *hit* (e.g. on the line just
  // filled) — a hit consumes no MSHR and produces no future fill, so
  // stopping after one admission could strand the rest of the queue with no
  // event left to ever admit them.
  // Queued requests re-enter the data path directly: coherent ones already
  // cleared the directory before they were queued.
  while (!pending_.empty() && mshrs_.size() < config_.mshrs) {
    const MemRequest next = pending_.front();
    pending_.pop_front();
    data_path(next);
  }
}

void L2Bank::save_state(BinWriter& w) const {
  if (!mshrs_.empty() || !pending_.empty()) {
    throw SimError(strfmt("l2bank%u: checkpoint with %zu MSHRs / %zu queued "
                          "requests in flight — checkpoints are only legal "
                          "at quiesce points",
                          bank_id_, mshrs_.size(), pending_.size()));
  }
  array_.save_state(w);
  std::vector<Addr> prefetched(prefetched_.begin(), prefetched_.end());
  std::sort(prefetched.begin(), prefetched.end());
  w.u64(prefetched.size());
  for (Addr line : prefetched) w.u64(line);
  w.b(directory_ != nullptr);
  if (directory_ != nullptr) directory_->save_state(w);
}

void L2Bank::load_state(BinReader& r) {
  array_.load_state(r);
  mshrs_.clear();
  pending_.clear();
  prefetched_.clear();
  const std::uint64_t n = r.count();
  for (std::uint64_t i = 0; i < n; ++i) prefetched_.insert(r.u64());
  const bool has_directory = r.b();
  if (has_directory != (directory_ != nullptr)) {
    throw SimError("l2bank checkpoint coherence-mode mismatch");
  }
  if (directory_ != nullptr) directory_->load_state(r);
}

}  // namespace coyote::memhier
