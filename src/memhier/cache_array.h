// A generic set-associative tag array with true-LRU replacement and dirty
// bits. Pure state, no timing: the L1 models (ISS side) and the L2 banks
// (event-model side) both build on it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/binio.h"
#include "common/bits.h"
#include "common/error.h"
#include "common/types.h"

namespace coyote::memhier {

/// Victim-selection policy.
enum class Replacement : std::uint8_t {
  kLru,     ///< true LRU (default)
  kFifo,    ///< insertion order; hits do not refresh
  kRandom,  ///< pseudo-random way (deterministic per-array stream)
};

inline const char* replacement_name(Replacement policy) {
  switch (policy) {
    case Replacement::kLru: return "lru";
    case Replacement::kFifo: return "fifo";
    case Replacement::kRandom: return "random";
  }
  return "?";
}

/// MESI stability state of a resident line (coherence=mesi only; arrays in
/// a non-coherent hierarchy leave every line at kInvalid and ignore it).
enum class CohState : std::uint8_t {
  kInvalid,
  kShared,
  kExclusive,
  kModified,
};

inline const char* coh_state_name(CohState state) {
  switch (state) {
    case CohState::kInvalid: return "I";
    case CohState::kShared: return "S";
    case CohState::kExclusive: return "E";
    case CohState::kModified: return "M";
  }
  return "?";
}

class CacheArray {
 public:
  struct Config {
    std::uint64_t size_bytes = 32 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t line_bytes = 64;
    Replacement replacement = Replacement::kLru;
  };

  /// The line displaced by an insert (valid == false when a free way was
  /// available).
  struct Eviction {
    bool valid = false;
    bool dirty = false;
    Addr line_addr = 0;
  };

  /// One tag-array slot. Public so hot callers (the ISS decoded-block
  /// dispatch) can hold a hit handle across back-to-back accesses to the
  /// same line and skip the way scan. A handle is invalidated by anything
  /// that can move or clear entries — insert(), invalidate(),
  /// invalidate_all(), load_state() — so holders must drop theirs whenever
  /// one of those may have run.
  struct Entry {
    Addr line_addr = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
    CohState coh = CohState::kInvalid;
  };

  explicit CacheArray(const Config& config) : config_(config) {
    if (!is_pow2(config.line_bytes) || !is_pow2(config.size_bytes) ||
        config.ways == 0) {
      throw ConfigError("CacheArray: size and line must be powers of two");
    }
    if (config.size_bytes % (static_cast<std::uint64_t>(config.ways) *
                             config.line_bytes) != 0) {
      throw ConfigError("CacheArray: size not divisible by ways*line");
    }
    sets_ = config.size_bytes / config.ways / config.line_bytes;
    if (!is_pow2(sets_)) throw ConfigError("CacheArray: set count not pow2");
    line_shift_ = log2_exact(config.line_bytes);
    set_mask_ = sets_ - 1;
    entries_.assign(static_cast<std::size_t>(sets_) * config.ways, Entry{});
  }

  const Config& config() const { return config_; }
  std::uint64_t sets() const { return sets_; }
  std::uint32_t ways() const { return config_.ways; }
  std::uint32_t line_bytes() const { return config_.line_bytes; }

  /// Line-aligns an address.
  Addr line_of(Addr addr) const { return addr >> line_shift_ << line_shift_; }

  /// True iff `line_addr` is resident. Updates recency on hit (LRU only).
  bool lookup(Addr line_addr) {
    Entry* entry = find(line_addr);
    if (entry == nullptr) return false;
    if (config_.replacement == Replacement::kLru) entry->lru = ++clock_;
    return true;
  }

  /// lookup() returning the hit entry (nullptr on miss) instead of a bool,
  /// with the identical recency update — `lookup(a)` and
  /// `lookup_entry(a) != nullptr` leave the array in the same state.
  Entry* lookup_entry(Addr line_addr) {
    Entry* entry = find(line_addr);
    if (entry == nullptr) return nullptr;
    if (config_.replacement == Replacement::kLru) entry->lru = ++clock_;
    return entry;
  }

  /// Re-touches a held hit handle: the exact recency update a fresh
  /// lookup() hit would apply, without the way scan.
  void refresh(Entry* entry) {
    if (config_.replacement == Replacement::kLru) entry->lru = ++clock_;
  }

  /// mark_dirty() on a held hit handle — same dirty bit and recency bump as
  /// the scanning version, which the handle makes redundant.
  void mark_dirty_entry(Entry* entry) {
    entry->dirty = true;
    if (config_.replacement == Replacement::kLru) entry->lru = ++clock_;
  }

  /// Lookup without LRU update (for tests / probing).
  bool probe(Addr line_addr) const {
    return const_cast<CacheArray*>(this)->find(line_addr) != nullptr;
  }

  /// Marks a resident line dirty. Returns false if the line is absent.
  bool mark_dirty(Addr line_addr) {
    Entry* entry = find(line_addr);
    if (entry == nullptr) return false;
    entry->dirty = true;
    if (config_.replacement == Replacement::kLru) entry->lru = ++clock_;
    return true;
  }

  bool is_dirty(Addr line_addr) const {
    const Entry* entry = const_cast<CacheArray*>(this)->find(line_addr);
    return entry != nullptr && entry->dirty;
  }

  /// Inserts `line_addr` (which must not be resident), evicting a victim
  /// chosen by the configured replacement policy if the set is full.
  Eviction insert(Addr line_addr, bool dirty,
                  CohState coh = CohState::kInvalid) {
    const std::size_t set = set_of(line_addr);
    Entry* victim = nullptr;
    bool found_free = false;
    for (std::uint32_t way = 0; way < config_.ways; ++way) {
      Entry& entry = entries_[set * config_.ways + way];
      if (!entry.valid) {
        victim = &entry;
        found_free = true;
        break;
      }
      // LRU and FIFO both evict the smallest timestamp; they differ in
      // whether lookup() refreshes it.
      if (victim == nullptr || entry.lru < victim->lru) victim = &entry;
    }
    if (!found_free && config_.replacement == Replacement::kRandom) {
      rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::uint32_t way =
          static_cast<std::uint32_t>((rng_state_ >> 33) % config_.ways);
      victim = &entries_[set * config_.ways + way];
    }
    Eviction evicted;
    if (victim->valid) {
      evicted.valid = true;
      evicted.dirty = victim->dirty;
      evicted.line_addr = victim->line_addr;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->coh = coh;
    victim->line_addr = line_of(line_addr);
    victim->lru = ++clock_;
    return evicted;
  }

  /// Coherence state of a resident line (kInvalid when absent).
  CohState coh_state(Addr line_addr) const {
    const Entry* entry = const_cast<CacheArray*>(this)->find(line_addr);
    return entry != nullptr ? entry->coh : CohState::kInvalid;
  }

  /// Sets the coherence state of a resident line. Returns false if absent.
  bool set_coh_state(Addr line_addr, CohState state) {
    Entry* entry = find(line_addr);
    if (entry == nullptr) return false;
    entry->coh = state;
    return true;
  }

  /// Demotes a resident line to Shared and cleans its dirty bit (the data
  /// travels back with the WbAck). Returns whether it was dirty; false if
  /// the line is absent.
  bool downgrade(Addr line_addr) {
    Entry* entry = find(line_addr);
    if (entry == nullptr) return false;
    const bool dirty = entry->dirty;
    entry->dirty = false;
    entry->coh = CohState::kShared;
    return dirty;
  }

  /// Removes a line if resident; returns whether it was dirty.
  bool invalidate(Addr line_addr) {
    Entry* entry = find(line_addr);
    if (entry == nullptr) return false;
    const bool dirty = entry->dirty;
    *entry = Entry{};
    return dirty;
  }

  void invalidate_all() {
    for (Entry& entry : entries_) entry = Entry{};
  }

  std::uint64_t resident_lines() const {
    std::uint64_t count = 0;
    for (const Entry& entry : entries_) count += entry.valid ? 1 : 0;
    return count;
  }

  /// Line address of the `index`-th valid entry in array (set-major) order.
  /// Deterministic enumeration for the fault engine: a plan picks a victim
  /// line as a seeded index into [0, resident_lines()). Throws if out of
  /// range.
  Addr resident_line_at(std::uint64_t index) const {
    std::uint64_t seen = 0;
    for (const Entry& entry : entries_) {
      if (!entry.valid) continue;
      if (seen == index) return entry.line_addr;
      ++seen;
    }
    throw SimError(strfmt("CacheArray: resident_line_at(%llu) out of range "
                          "(%llu resident)",
                          static_cast<unsigned long long>(index),
                          static_cast<unsigned long long>(seen)));
  }

  /// Checkpoint: tags, LRU stamps, dirty/coherence bits and the replacement
  /// clock / RNG stream (geometry is rebuilt from config, not serialized).
  void save_state(BinWriter& w) const {
    w.u64(clock_);
    w.u64(rng_state_);
    w.u64(entries_.size());
    for (const Entry& entry : entries_) {
      w.u64(entry.line_addr);
      w.u64(entry.lru);
      w.b(entry.valid);
      w.b(entry.dirty);
      w.u8(static_cast<std::uint8_t>(entry.coh));
    }
  }

  void load_state(BinReader& r) {
    clock_ = r.u64();
    rng_state_ = r.u64();
    const std::uint64_t n = r.u64();
    if (n != entries_.size()) {
      throw SimError("CacheArray checkpoint geometry mismatch");
    }
    for (Entry& entry : entries_) {
      entry.line_addr = r.u64();
      entry.lru = r.u64();
      entry.valid = r.b();
      entry.dirty = r.b();
      entry.coh = static_cast<CohState>(r.u8());
    }
  }

 private:
  std::size_t set_of(Addr line_addr) const {
    return (line_addr >> line_shift_) & set_mask_;
  }

  Entry* find(Addr line_addr) {
    const Addr aligned = line_of(line_addr);
    const std::size_t set = set_of(aligned);
    for (std::uint32_t way = 0; way < config_.ways; ++way) {
      Entry& entry = entries_[set * config_.ways + way];
      if (entry.valid && entry.line_addr == aligned) return &entry;
    }
    return nullptr;
  }

  Config config_;
  std::uint64_t sets_;
  std::uint64_t set_mask_;
  unsigned line_shift_;
  std::uint64_t clock_ = 0;
  std::uint64_t rng_state_ = 0x9E3779B97F4A7C15ULL;
  std::vector<Entry> entries_;
};

}  // namespace coyote::memhier
