// Memory-controller models. The paper's baseline controller is a fixed
// latency behind the NoC; modelling "the memory controllers … is currently
// work in progress" there, so Coyote additionally ships the natural next
// step: a bandwidth-limited controller with a per-internal-bank open-row
// model (row-buffer hit vs miss latencies) that the MCPU studies in §IV
// motivate.
#pragma once

#include <memory>
#include <vector>

#include "common/binio.h"
#include "common/bits.h"
#include "common/error.h"
#include "memhier/fault_hooks.h"
#include "memhier/msg.h"
#include "memhier/noc.h"
#include "simfw/port.h"

namespace coyote::memhier {

enum class McModel : std::uint8_t { kFixedLatency, kDramRowBuffer };

struct MemCtrlConfig {
  McModel model = McModel::kFixedLatency;
  Cycle latency = 100;            ///< fixed-latency model: access time
  Cycle cycles_per_request = 4;   ///< service rate (bandwidth limit); 0 = infinite
  // --- DRAM row-buffer model ---
  std::uint32_t dram_banks = 8;
  std::uint64_t row_bytes = 2048;
  Cycle row_hit_latency = 40;
  Cycle row_miss_latency = 140;
};

class MemoryController : public simfw::Unit {
 public:
  MemoryController(simfw::Unit* parent, std::string name, McId mc_id,
                   const MemCtrlConfig& config, Noc* noc,
                   std::uint32_t num_l2_banks);

  McId mc_id() const { return mc_id_; }
  const MemCtrlConfig& config() const { return config_; }

  simfw::DataInPort<MemRequest>& req_in() { return req_in_; }
  /// One response port per L2 bank; bind each to that bank's mem_resp_in.
  simfw::DataOutPort<MemResponse>& resp_out(BankId bank) {
    return *resp_out_.at(bank);
  }

  /// Checkpoint: bandwidth-slot reservation and per-bank open rows. The
  /// reservation may extend past the checkpoint cycle (it is a future
  /// timestamp, not an in-flight event), so it is serialized even though
  /// the event queue is empty. Counters live in the statistics tree.
  void save_state(BinWriter& w) const {
    w.u64(next_free_);
    w.u64(open_rows_.size());
    for (Addr row : open_rows_) w.u64(row);
  }
  void load_state(BinReader& r) {
    next_free_ = r.u64();
    const std::uint64_t n = r.u64();
    if (n != open_rows_.size()) {
      throw SimError("MemoryController checkpoint geometry mismatch");
    }
    for (Addr& row : open_rows_) row = r.u64();
  }

  /// Fault injection: every read consults `hooks` for a transient extra
  /// service delay (a controller stall). nullptr = zero-overhead path.
  void set_fault_hooks(FaultHooks* hooks) { fault_hooks_ = hooks; }
  std::uint64_t fault_stalls() const { return fault_stalls_; }

 private:
  void on_request(const MemRequest& request);
  Cycle service_latency(Addr line_addr);

  McId mc_id_;
  MemCtrlConfig config_;
  Noc* noc_;

  simfw::DataInPort<MemRequest> req_in_;
  std::vector<std::unique_ptr<simfw::DataOutPort<MemResponse>>> resp_out_;

  FaultHooks* fault_hooks_ = nullptr;  ///< plain members: see L2Bank
  std::uint64_t fault_stalls_ = 0;

  Cycle next_free_ = 0;  ///< service-slot reservation (bandwidth model)
  std::vector<Addr> open_rows_;  ///< per internal DRAM bank; ~0 = closed
  unsigned row_shift_ = 0;
  unsigned line_shift_ = 6;

  simfw::Counter& reads_;
  simfw::Counter& writes_;
  simfw::Counter& row_hits_;
  simfw::Counter& row_misses_;
  simfw::Counter& queue_delay_cycles_;
  simfw::DistributionStat& queue_delay_;
};

}  // namespace coyote::memhier
