#include "memhier/llc.h"

namespace coyote::memhier {

LlcSlice::LlcSlice(simfw::Unit* parent, std::string name, McId mc_id,
                   const LlcConfig& config, Noc* noc,
                   std::uint32_t num_l2_banks)
    : simfw::Unit(parent, std::move(name)),
      mc_id_(mc_id),
      config_(config),
      array_(CacheArray::Config{config.size_bytes, config.ways,
                                config.line_bytes, config.replacement}),
      noc_(noc),
      req_in_(this, "req_in"),
      mem_req_out_(this, "mem_req_out"),
      mem_resp_in_(this, "mem_resp_in"),
      accesses_(stats().counter("accesses", "requests looked up")),
      hits_(stats().counter("hits", "lookups that hit")),
      misses_(stats().counter("misses", "lookups that missed")),
      writebacks_in_(
          stats().counter("writebacks_in", "dirty L2 evictions absorbed")),
      writebacks_out_(
          stats().counter("writebacks_out", "dirty lines written to DRAM")),
      evictions_(stats().counter("evictions", "lines displaced by fills")) {
  if (noc_ == nullptr) throw ConfigError("LlcSlice: needs a NoC");
  resp_out_.reserve(num_l2_banks);
  for (BankId bank = 0; bank < num_l2_banks; ++bank) {
    resp_out_.push_back(std::make_unique<simfw::DataOutPort<MemResponse>>(
        this, strfmt("resp_out%u", bank)));
  }
  req_in_.register_handler(
      [this](const MemRequest& request) { on_request(request); });
  mem_resp_in_.register_handler(
      [this](const MemResponse& response) { on_mem_response(response); });
  stats().statistic("hit_rate", "hits / accesses", [this]() {
    const auto accesses = accesses_.get();
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits_.get()) / accesses;
  });
}

void LlcSlice::respond(const MemRequest& request, Cycle delay) {
  // The slice sits at its controller's NoC node; the response crosses the
  // NoC back to the requesting bank's tile.
  const MemResponse response{request.line_addr, request.op, request.core};
  if (noc_->contended()) {
    auto* port = resp_out_[request.src_bank].get();
    noc_->transmit(noc_->mc_node(mc_id_), noc_->tile_node(request.src_tile),
                   noc_->message_bytes(response), delay, response.core,
                   [port, response]() { port->deliver_now(response); });
    return;
  }
  resp_out_[request.src_bank]->send(
      response, delay + noc_->traverse(noc_->mc_node(mc_id_),
                                       noc_->tile_node(request.src_tile)));
}

void LlcSlice::insert_line(Addr line_addr, bool dirty) {
  const auto evicted = array_.insert(line_addr, dirty);
  if (evicted.valid) {
    ++evictions_;
    if (evicted.dirty) {
      ++writebacks_out_;
      mem_req_out_.send(MemRequest{evicted.line_addr, MemOp::kWriteback,
                                   kInvalidCore, 0, 0},
                        0);
    }
  }
}

void LlcSlice::on_request(const MemRequest& request) {
  if (request.op == MemOp::kWriteback) {
    ++writebacks_in_;
    if (!array_.mark_dirty(request.line_addr)) {
      // Write-allocate the dirty line; DRAM sees it only on eviction.
      insert_line(request.line_addr, /*dirty=*/true);
    }
    return;
  }

  ++accesses_;
  if (array_.lookup(request.line_addr)) {
    ++hits_;
    respond(request, config_.hit_latency);
    return;
  }
  ++misses_;
  auto [it, inserted] = mshrs_.try_emplace(request.line_addr);
  it->second.push_back(request);
  if (inserted) {
    MemRequest forwarded = request;
    // The slice is co-located with its controller: make the controller's
    // response path terminate at this NoC node (zero mesh distance) rather
    // than re-crossing the NoC to the original bank — the slice itself pays
    // that leg when it answers the bank.
    forwarded.src_tile = noc_->mc_node(mc_id_);
    mem_req_out_.send(forwarded, config_.miss_latency);
  }
}

void LlcSlice::on_mem_response(const MemResponse& response) {
  const auto it = mshrs_.find(response.line_addr);
  if (it == mshrs_.end()) {
    throw SimError(strfmt("%s: DRAM response for line 0x%llx with no MSHR",
                          path().c_str(),
                          static_cast<unsigned long long>(response.line_addr)));
  }
  const std::vector<MemRequest> waiters = std::move(it->second);
  mshrs_.erase(it);
  insert_line(response.line_addr, /*dirty=*/false);
  for (const MemRequest& waiter : waiters) respond(waiter, 0);
}

}  // namespace coyote::memhier
