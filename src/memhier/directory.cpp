#include "memhier/directory.h"

#include <algorithm>

#include "common/binio.h"

namespace coyote::memhier {

namespace {
std::uint64_t core_bit(CoreId core) { return std::uint64_t{1} << core; }
}  // namespace

Directory::Directory(std::uint32_t num_cores) : num_cores_(num_cores) {
  if (num_cores == 0 || num_cores > 64) {
    throw ConfigError("Directory: sharer bitmask supports 1..64 cores");
  }
}

Directory::Action Directory::submit(const MemRequest& request,
                                    std::vector<Probe>& probes_out) {
  if (request.op != MemOp::kGetS && request.op != MemOp::kGetM) {
    throw SimError("Directory::submit: only kGetS/kGetM are transactions");
  }
  auto [it, inserted] = transactions_.try_emplace(request.line_addr);
  if (!inserted) {
    it->second.queued.push_back(request);
    return Action::kBlocked;
  }
  it->second.active = request;
  return activate(request, probes_out);
}

Directory::Action Directory::activate(const MemRequest& request,
                                      std::vector<Probe>& probes_out) {
  Entry& line = entry(request.line_addr);
  Txn& txn = transactions_.at(request.line_addr);
  const CoreId requester = request.core;
  std::uint32_t probes = 0;
  if (request.op == MemOp::kGetS) {
    // Only a foreign owner must act: demote M/E to S so the requester can
    // share. Sharers stay untouched.
    if (line.owner != kInvalidCore && line.owner != requester) {
      probes_out.push_back(Probe{line.owner, /*to_shared=*/true});
      line.sharers |= core_bit(line.owner);
      line.owner = kInvalidCore;
      ++probes;
    }
  } else {  // kGetM
    // Every foreign copy — owner and sharers alike — must invalidate.
    if (line.owner != kInvalidCore && line.owner != requester) {
      probes_out.push_back(Probe{line.owner, /*to_shared=*/false});
      ++probes;
    }
    line.owner = kInvalidCore;
    for (CoreId core = 0; core < num_cores_; ++core) {
      if (core == requester) continue;
      if ((line.sharers & core_bit(core)) == 0) continue;
      probes_out.push_back(Probe{core, /*to_shared=*/false});
      ++probes;
    }
    line.sharers &= core_bit(requester);
  }
  txn.pending_acks = probes;
  return probes == 0 ? Action::kProceed : Action::kBlocked;
}

std::optional<MemRequest> Directory::ack(Addr line) {
  const auto it = transactions_.find(line);
  if (it == transactions_.end() || it->second.pending_acks == 0) {
    throw SimError("Directory::ack: no probe phase in progress for line");
  }
  if (--it->second.pending_acks > 0) return std::nullopt;
  return it->second.active;
}

CohGrant Directory::complete(const MemRequest& request,
                             std::optional<MemRequest>& next) {
  next = std::nullopt;
  const auto it = transactions_.find(request.line_addr);
  if (it == transactions_.end()) {
    throw SimError("Directory::complete: no transaction for line");
  }
  Entry& line = entry(request.line_addr);
  const CoreId requester = request.core;
  CohGrant grant;
  if (request.op == MemOp::kGetM) {
    line.owner = requester;
    line.sharers = 0;
    grant = CohGrant::kModified;
  } else {
    // Exclusive when the requester ends up the sole holder (it may already
    // be the remembered owner or lone sharer after a silent eviction).
    const bool sole = (line.owner == kInvalidCore || line.owner == requester) &&
                      (line.sharers & ~core_bit(requester)) == 0;
    if (sole) {
      line.owner = requester;
      line.sharers = 0;
      grant = CohGrant::kExclusive;
    } else {
      line.sharers |= core_bit(requester);
      grant = CohGrant::kShared;
    }
  }
  if (it->second.queued.empty()) {
    transactions_.erase(it);
  } else {
    Txn& txn = it->second;
    txn.active = txn.queued.front();
    txn.queued.pop_front();
    txn.pending_acks = 0;
    next = txn.active;
  }
  drop_if_empty(request.line_addr);
  return grant;
}

void Directory::on_writeback(Addr line_addr, CoreId core) {
  const auto it = lines_.find(line_addr);
  if (it == lines_.end()) return;
  if (it->second.owner == core) it->second.owner = kInvalidCore;
  it->second.sharers &= ~core_bit(core);
  drop_if_empty(line_addr);
}

CoreId Directory::owner_of(Addr line) const {
  const auto it = lines_.find(line);
  return it == lines_.end() ? kInvalidCore : it->second.owner;
}

std::uint64_t Directory::sharer_mask(Addr line) const {
  const auto it = lines_.find(line);
  return it == lines_.end() ? 0 : it->second.sharers;
}

bool Directory::has_transaction(Addr line) const {
  return transactions_.count(line) != 0;
}

std::size_t Directory::tracked_lines() const { return lines_.size(); }

std::vector<Addr> Directory::transaction_lines() const {
  std::vector<Addr> lines;
  lines.reserve(transactions_.size());
  for (const auto& [line, txn] : transactions_) {
    (void)txn;
    lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

void Directory::restore_entry(Addr line, CoreId owner, std::uint64_t sharers) {
  if (owner == kInvalidCore && sharers == 0) {
    lines_.erase(line);
    return;
  }
  Entry& e = entry(line);
  e.owner = owner;
  e.sharers = sharers;
}

void Directory::save_state(BinWriter& w) const {
  if (!transactions_.empty()) {
    throw SimError("Directory: checkpoint with coherence transactions in "
                   "flight — checkpoints are only legal at quiesce points");
  }
  std::vector<Addr> lines;
  lines.reserve(lines_.size());
  for (const auto& [line, e] : lines_) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  w.u64(lines.size());
  for (Addr line : lines) {
    const Entry& e = lines_.at(line);
    w.u64(line);
    w.u32(e.owner);
    w.u64(e.sharers);
  }
}

void Directory::load_state(BinReader& r) {
  lines_.clear();
  transactions_.clear();
  const std::uint64_t n = r.count();
  for (std::uint64_t i = 0; i < n; ++i) {
    const Addr line = r.u64();
    const CoreId owner = r.u32();
    const std::uint64_t sharers = r.u64();
    restore_entry(line, owner, sharers);
  }
}

void Directory::drop_if_empty(Addr line) {
  const auto it = lines_.find(line);
  if (it != lines_.end() && it->second.empty() && !has_transaction(line)) {
    lines_.erase(it);
  }
}

}  // namespace coyote::memhier
