// Event-driven contended 2D-mesh network (noc.model=mesh). Models a W x H
// grid of routers connected by directed links; every node is either a tile,
// a memory controller (seated row-major after the tiles, which lands the MCs
// on the bottom edge of the rectangle) or an unused pass-through router.
//
// Model, per message (virtual cut-through at message granularity):
//   - injection: pre_delay + router_latency cycles after transmit(), the
//     message appears at its source router's local input port;
//   - routing: dimension-ordered XY (X first, then Y) — deadlock-free;
//   - per directed link: finite input buffer (`buffer_flits`, credit-based
//     backpressure) and finite bandwidth (`link_bandwidth` flits/cycle; a
//     message of F flits occupies the link ceil(F / bw) cycles);
//   - arbitration: deterministic round-robin over the five input ports
//     (E, W, N, S, local) contending for each output link;
//   - hop: a granted message arrives at the next router `hop_latency`
//     cycles later.
// With buffer_flits=0 (infinite) and link_bandwidth=0 (infinite) every
// message is granted the cycle it requests, reproducing the uncontended
// hop-latency oracle cycle-for-cycle: delivery at
// send + pre_delay + router_latency + hop_latency * manhattan(src, dst).
//
// Determinism: everything runs on the calendar queue (priority
// kPortDelivery), ties broken by scheduling sequence, round-robin pointers
// advanced in grant order. Same-cycle deliveries at a destination are
// drained by ONE event per cycle in message *injection* order — exactly the
// order the fixed-latency models deliver in — so the contended mesh in its
// degenerate configuration is indistinguishable from the oracle, and every
// mesh run is bit-reproducible at any host thread count.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "simfw/scheduler.h"
#include "simfw/statistics.h"

namespace coyote {
class BinWriter;
class BinReader;
}  // namespace coyote

namespace coyote::memhier {

class MeshRouterNet {
 public:
  struct Config {
    std::uint32_t width = 4;
    std::uint32_t height = 1;
    Cycle router_latency = 2;     ///< injection pipeline depth (>= 1)
    Cycle hop_latency = 1;        ///< per-link traversal latency
    std::uint64_t link_bandwidth = 1;  ///< flits/cycle per link; 0 = infinite
    std::uint32_t buffer_flits = 8;    ///< per-link input buffer; 0 = infinite
  };

  /// `stats` receives the aggregate and per-link counters (registered once,
  /// at construction, so the stats-tree shape is a pure function of config).
  MeshRouterNet(simfw::Scheduler* scheduler, const Config& config,
                simfw::StatisticSet& stats);
  ~MeshRouterNet();

  MeshRouterNet(const MeshRouterNet&) = delete;
  MeshRouterNet& operator=(const MeshRouterNet&) = delete;

  /// Injects a message of `flits` flits. `deliver` runs when the message is
  /// ejected at `dst` (same-cycle ejections run in injection order). `core`
  /// attributes congestion-trace events (kInvalidCore: not attributed).
  void inject(std::uint32_t src, std::uint32_t dst, std::uint32_t flits,
              Cycle pre_delay, CoreId core, std::function<void()> deliver);

  /// Observer called at every grant that waited >= 1 cycle for a link:
  /// (grant cycle, originating core, cycles waited).
  void set_congestion_sink(
      std::function<void(Cycle, CoreId, std::uint64_t)> sink) {
    congestion_sink_ = std::move(sink);
  }

  /// True iff no message is buffered, in flight on a link, or awaiting its
  /// delivery drain.
  bool quiescent() const { return in_flight_.empty() && ready_.empty(); }

  std::uint64_t delivered() const { return delivered_->get(); }

  /// Serializes the residual link state (next-free cycles, round-robin
  /// pointers). Requires quiescent(); throws SimError otherwise. Buffers and
  /// credits are empty/full by the quiesce invariant and are not written.
  void save_state(BinWriter& w) const;
  void load_state(BinReader& r);

  std::uint32_t width() const { return config_.width; }
  std::uint32_t height() const { return config_.height; }
  std::uint32_t num_links() const { return num_links_; }

 private:
  // Directions out of a node; opposite(d) == d ^ 1.
  static constexpr std::uint8_t kEast = 0;
  static constexpr std::uint8_t kWest = 1;
  static constexpr std::uint8_t kNorth = 2;  // towards y-1
  static constexpr std::uint8_t kSouth = 3;  // towards y+1
  static constexpr std::uint8_t kLocal = 4;  // injection port
  static constexpr std::size_t kNumInPorts = 5;
  static constexpr std::uint32_t kNoLink = ~std::uint32_t{0};
  static constexpr Cycle kNoCycle = ~Cycle{0};

  struct Msg {
    std::uint32_t dst = 0;
    std::uint32_t flits = 1;
    CoreId core = kInvalidCore;
    std::function<void()> deliver;
    std::uint64_t seq = 0;         ///< injection order; drives drain order
    std::uint32_t held_link = kNoLink;  ///< link whose buffer this occupies
    Cycle enqueued_at = 0;         ///< when it last requested a link
  };

  /// One directed link node->neighbor plus the downstream input buffer it
  /// feeds (credit accounting) and the output arbitration state at `from`.
  struct Link {
    bool exists = false;
    std::uint32_t to = 0;
    std::uint64_t credits = 0;     ///< free flits downstream (finite buffers)
    Cycle next_free = 0;           ///< link busy until here (finite bandwidth)
    std::uint8_t rr = 0;           ///< next input port round-robin offset
    Cycle arb_at = kNoCycle;       ///< earliest scheduled arbitration event
    std::uint64_t queued_flits = 0;
    std::deque<Msg*> queues[kNumInPorts];
    simfw::Counter* flits = nullptr;       ///< flits forwarded
    simfw::Counter* busy_cycles = nullptr; ///< cycles spent transmitting
    simfw::Counter* wait_cycles = nullptr; ///< message-cycles waited here
    simfw::Counter* peak_queue = nullptr;  ///< peak queued flits
  };

  std::uint32_t node_x(std::uint32_t n) const { return n % config_.width; }
  std::uint32_t node_y(std::uint32_t n) const { return n / config_.width; }
  std::uint32_t link_id(std::uint32_t node, std::uint8_t dir) const {
    return node * 4 + dir;
  }
  std::uint8_t next_dir(std::uint32_t node, std::uint32_t dst) const;
  bool has_queued(const Link& l) const;

  void on_arrival(Msg* m, std::uint32_t node);
  void request_link(Msg* m, std::uint32_t node, std::uint8_t dir,
                    std::uint8_t in_port);
  void schedule_arb(std::uint32_t lid, Cycle at);
  void arbitrate(std::uint32_t lid);
  void grant(std::uint32_t lid, Msg* m, Cycle now);
  void release_held(Msg* m, Cycle now);
  void push_ready(Msg* m);
  void drain();

  simfw::Scheduler* sched_;
  Config config_;
  std::uint32_t num_nodes_ = 0;
  std::uint32_t num_links_ = 0;
  std::vector<Link> links_;

  std::uint64_t next_seq_ = 0;
  std::unordered_set<Msg*> in_flight_;
  std::vector<Msg*> ready_;
  Cycle drain_scheduled_for_ = kNoCycle;

  simfw::Counter* delivered_ = nullptr;
  simfw::Counter* total_flits_ = nullptr;
  simfw::Counter* total_wait_ = nullptr;
  simfw::Counter* peak_queue_ = nullptr;
  std::function<void(Cycle, CoreId, std::uint64_t)> congestion_sink_;
};

}  // namespace coyote::memhier
