// Per-bank MESI directory: owner/sharer tracking plus per-line transaction
// serialization. The directory is a pure state machine — the owning L2Bank
// turns its decisions into NoC messages (probes on the response port, data
// fills after ack collection) and calls back in as acks arrive.
//
// Precision model: L1s evict clean (S/E) lines silently, so the directory is
// deliberately imprecise — it may remember sharers/owners that no longer
// hold the line. Probes to such cores are answered with a miss-ack
// (dirty_data=false) and cost only the probe round-trip. Dirty evictions
// arrive as kWriteback messages and clear ownership eagerly.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "memhier/msg.h"

namespace coyote {
class BinWriter;
class BinReader;
}  // namespace coyote

namespace coyote::memhier {

class Directory {
 public:
  /// One invalidation/downgrade the bank must deliver to an L1.
  struct Probe {
    CoreId target = kInvalidCore;
    bool to_shared = false;  ///< true: kDowngrade (M/E -> S); false: kInv
  };

  enum class Action : std::uint8_t {
    kProceed,  ///< no probes needed; run the data path for this request now
    kBlocked,  ///< queued behind another transaction, or waiting for acks
  };

  explicit Directory(std::uint32_t num_cores);

  /// Submits a coherent request (kGetS / kGetM). At most one transaction is
  /// active per line; later requests queue and are promoted by complete().
  /// When probes are required they are appended to `probes_out` and the
  /// transaction blocks until ack() has been called once per probe.
  Action submit(const MemRequest& request, std::vector<Probe>& probes_out);

  /// Starts the probe phase for a request previously handed back through
  /// complete()'s `next` out-param (it is already the active transaction).
  /// Same contract as submit(): kProceed means run the data path now.
  Action activate(const MemRequest& request, std::vector<Probe>& probes_out);

  /// Records one probe ack for `line`. Returns the active request when the
  /// probe phase finished (the bank should now run its data path for it).
  std::optional<MemRequest> ack(Addr line);

  /// Called when the bank sends the data response for the active
  /// transaction on `request.line_addr`: computes the access grant, applies
  /// the final owner/sharer state, and pops the next queued request (if
  /// any) into `next` for the bank to re-activate.
  CohGrant complete(const MemRequest& request,
                    std::optional<MemRequest>& next);

  /// A dirty L1 eviction reached the bank: `core` gave up its copy.
  void on_writeback(Addr line, CoreId core);

  // ----- introspection (tests / statistics) -----
  /// Owner core of a line in E/M at the directory, or kInvalidCore.
  CoreId owner_of(Addr line) const;
  /// Bitmask of cores the directory believes hold the line in S.
  std::uint64_t sharer_mask(Addr line) const;
  bool has_transaction(Addr line) const;
  std::size_t tracked_lines() const;
  /// Lines with an in-flight transaction, sorted (hang diagnostics).
  std::vector<Addr> transaction_lines() const;

  /// Overwrites one line's owner/sharer record (checkpoint restore and
  /// fast-forward warm-up). An all-empty entry erases the record.
  void restore_entry(Addr line, CoreId owner, std::uint64_t sharers);

  /// Checkpoint: owner/sharer records, sorted by line address. Only legal
  /// when no transaction is in flight (quiesce invariant) — throws SimError
  /// otherwise.
  void save_state(BinWriter& w) const;
  void load_state(BinReader& r);

 private:
  struct Entry {
    CoreId owner = kInvalidCore;  ///< sole E/M holder
    std::uint64_t sharers = 0;    ///< bitmask of S holders
    bool empty() const { return owner == kInvalidCore && sharers == 0; }
  };

  struct Txn {
    MemRequest active;
    std::uint32_t pending_acks = 0;
    std::deque<MemRequest> queued;
  };

  Entry& entry(Addr line) { return lines_[line]; }
  void drop_if_empty(Addr line);

  std::uint32_t num_cores_;
  std::unordered_map<Addr, Entry> lines_;
  std::unordered_map<Addr, Txn> transactions_;
};

}  // namespace coyote::memhier
