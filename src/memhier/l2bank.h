// One L2 cache bank, modelled as an event-driven unit (the paper's
// "functionality of each element (e.g. an L2 Bank) is encapsulated as an
// independent component"). Configurable size/associativity/line size, a
// bounded number of in-flight misses (MSHRs) with an input queue behind
// them, hit/miss latencies, and dirty-writeback traffic to the memory
// controllers.
#pragma once

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "memhier/cache_array.h"
#include "memhier/directory.h"
#include "memhier/fault_hooks.h"
#include "memhier/mapping.h"
#include "memhier/msg.h"
#include "memhier/noc.h"
#include "simfw/port.h"

namespace coyote {
class BinWriter;
class BinReader;
}  // namespace coyote

namespace coyote::memhier {

/// L2-side prefetch policy — the "data management policies such as
/// prefetching, streaming" the paper lists as the tool's next modelling
/// step (§III-A).
enum class PrefetchPolicy : std::uint8_t {
  kNone,
  kNextLine,  ///< on a demand miss, fetch the next `degree` sequential lines
};

struct L2BankConfig {
  std::uint64_t size_bytes = 256 * 1024;  ///< capacity of this bank
  std::uint32_t ways = 16;
  std::uint32_t line_bytes = 64;
  Cycle hit_latency = 8;    ///< lookup-to-response on a hit
  Cycle miss_latency = 4;   ///< lookup-to-forward on a miss
  std::uint32_t mshrs = 16; ///< max in-flight misses
  Replacement replacement = Replacement::kLru;
  PrefetchPolicy prefetch = PrefetchPolicy::kNone;
  std::uint32_t prefetch_degree = 1;  ///< lines fetched ahead per miss
  /// Address distance between consecutive lines *this bank owns*. Under
  /// set-interleaving that is num_banks * line_bytes; under page-to-bank it
  /// is line_bytes. 0 = line_bytes. The Simulator fills this in from the
  /// mapping policy; prefetching a line another bank owns would be wasted.
  std::uint64_t prefetch_stride_bytes = 0;
  /// MESI directory mode (coherence=mesi): the bank owns a Directory,
  /// accepts kGetS/kGetM/kInvAck/kWbAck, and emits kInv/kDowngrade probes.
  bool coherent = false;
  std::uint32_t num_cores = 1;       ///< directory sharer-mask width
  std::uint32_t cores_per_tile = 1;  ///< maps probe targets to NoC tiles
};

class L2Bank : public simfw::Unit {
 public:
  /// `mc_mapper` selects the controller for misses; `noc` supplies latencies.
  L2Bank(simfw::Unit* parent, std::string name, BankId bank_id, TileId tile,
         const L2BankConfig& config, Noc* noc, const McMapper* mc_mapper);

  BankId bank_id() const { return bank_id_; }
  TileId tile() const { return tile_; }
  const L2BankConfig& config() const { return config_; }

  // ----- ports -----
  simfw::DataInPort<MemRequest>& cpu_req_in() { return cpu_req_in_; }
  simfw::DataOutPort<MemResponse>& cpu_resp_out() { return cpu_resp_out_; }
  simfw::DataInPort<MemResponse>& mem_resp_in() { return mem_resp_in_; }
  /// One out-port per memory controller; bind each to the MC's req_in.
  simfw::DataOutPort<MemRequest>& mem_req_out(McId mc) {
    return *mem_req_out_.at(mc);
  }

  /// Probes whether a line is resident (tests / debugging).
  bool contains(Addr line_addr) const { return array_.probe(line_addr); }
  bool line_dirty(Addr line_addr) const { return array_.is_dirty(line_addr); }
  std::size_t mshrs_in_use() const { return mshrs_.size(); }
  std::size_t queued_requests() const { return pending_.size(); }
  /// The MESI directory; nullptr unless config.coherent.
  const Directory* directory() const { return directory_.get(); }

  // ----- fast-forward / checkpoint support -----
  /// Raw tag array and mutable directory, exposed for fast-forward warm-up
  /// (lines are installed directly, bypassing timing and the probe/ack
  /// machinery) and for checkpointing.
  CacheArray& array() { return array_; }
  Directory* directory_mut() { return directory_.get(); }

  /// Checkpoint: tag array, prefetch bookkeeping and directory records.
  /// Only legal at a quiesce point — throws SimError if an MSHR, queued
  /// request or coherence transaction is in flight. Counters live in the
  /// Unit statistics tree and are checkpointed generically there.
  void save_state(BinWriter& w) const;
  void load_state(BinReader& r);

  // ----- fault injection (src/fault) -----
  /// Routes every response/probe send through `hooks` with a bounded
  /// retransmit protocol: a dropped message is resent after
  /// `backoff << attempt` cycles, up to `retries` retransmits, then lost
  /// for good (the requester wedges — watchdog territory). nullptr
  /// restores the zero-overhead direct path.
  void set_fault_hooks(FaultHooks* hooks, std::uint32_t retries,
                       Cycle backoff) {
    fault_hooks_ = hooks;
    fault_retries_ = retries;
    fault_backoff_ = backoff == 0 ? 1 : backoff;
  }
  std::uint64_t fault_retransmits() const { return fault_retransmits_; }
  std::uint64_t fault_lost_messages() const { return fault_lost_messages_; }

  /// Lines with an MSHR in flight, sorted (hang diagnostics).
  std::vector<Addr> mshr_lines() const {
    std::vector<Addr> lines;
    lines.reserve(mshrs_.size());
    for (const auto& [line, mshr] : mshrs_) {
      (void)mshr;
      lines.push_back(line);
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  }

 private:
  void on_cpu_request(const MemRequest& request);
  void on_mem_response(const MemResponse& response);
  void forward_to_mc(const MemRequest& request, Cycle extra_delay);
  void respond(const MemRequest& request, Cycle delay);
  /// The single exit towards the cores: consults the fault hooks (drop /
  /// extra delay) and runs the retransmit protocol. With no hooks armed
  /// this is exactly cpu_resp_out_.send(response, delay).
  void deliver_response(const MemResponse& response, Cycle delay,
                        std::uint32_t attempt);
  /// Contended-mesh twin of deliver_response(): runs the same fault /
  /// retransmit protocol, then injects the message into the mesh.
  /// `promoted` (a directory transaction unblocked by this grant) starts
  /// once the grant actually lands — or, if the grant is lost for good, at
  /// the uncontended arrival estimate so the directory never wedges on a
  /// transaction the oracle model would have started.
  void deliver_response_mesh(const MemResponse& response,
                             std::uint32_t dst_node, Cycle delay,
                             std::uint32_t attempt,
                             std::optional<MemRequest> promoted);
  /// Issues next-line prefetches following a demand miss at `line_addr`.
  void maybe_prefetch(Addr line_addr);
  /// The cache data path (hit / miss / MSHR merge / input queue) shared by
  /// plain requests and coherent requests cleared by the directory.
  void data_path(const MemRequest& request);
  /// Directory decided probes are needed / a promoted txn starts.
  void start_probe_phase(const MemRequest& request);
  void send_probe(const Directory::Probe& probe, Addr line_addr);
  void on_coh_ack(const MemRequest& request);

  struct Mshr {
    std::vector<MemRequest> waiters;
    bool prefetch_only = true;  ///< no demand request waits on this line
  };

  BankId bank_id_;
  TileId tile_;
  L2BankConfig config_;
  CacheArray array_;
  Noc* noc_;
  const McMapper* mc_mapper_;

  simfw::DataInPort<MemRequest> cpu_req_in_;
  simfw::DataOutPort<MemResponse> cpu_resp_out_;
  simfw::DataInPort<MemResponse> mem_resp_in_;
  std::vector<std::unique_ptr<simfw::DataOutPort<MemRequest>>> mem_req_out_;

  std::unordered_map<Addr, Mshr> mshrs_;
  std::deque<MemRequest> pending_;  ///< requests waiting for a free MSHR
  std::unordered_set<Addr> prefetched_;  ///< resident, not yet demanded
  std::unique_ptr<Directory> directory_;  ///< only when config.coherent

  // Fault-injection state. Plain members, not stats-tree counters: hooks
  // are armed per-run from outside, and the stats-tree shape must stay
  // independent of whether a fault engine is attached (checkpoints compare
  // the tree structurally).
  FaultHooks* fault_hooks_ = nullptr;
  std::uint32_t fault_retries_ = 0;
  Cycle fault_backoff_ = 1;
  std::uint64_t fault_retransmits_ = 0;
  std::uint64_t fault_lost_messages_ = 0;

  simfw::Counter& accesses_;
  simfw::Counter& hits_;
  simfw::Counter& misses_;
  simfw::Counter& merged_misses_;
  simfw::Counter& mshr_stalls_;
  simfw::Counter& writebacks_in_;
  simfw::Counter& writebacks_out_;
  simfw::Counter& evictions_;
  simfw::Counter& prefetches_issued_;
  simfw::Counter& prefetches_useful_;
  // Coherence counters, registered only in directory mode so the stats
  // tree (and every report derived from it) is unchanged when coherence is
  // off.
  simfw::Counter* coh_invalidations_ = nullptr;  ///< kInv probes sent
  simfw::Counter* coh_downgrades_ = nullptr;     ///< kDowngrade probes sent
  simfw::Counter* coh_dirty_acks_ = nullptr;     ///< acks carrying dirty data
  simfw::Counter* coh_serialized_ = nullptr;     ///< requests queued per-line
};

}  // namespace coyote::memhier
