// Messages exchanged between the CPU side (Orchestrator), the L2 banks and
// the memory controllers. All traffic is at cache-line granularity.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace coyote::memhier {

enum class MemOp : std::uint8_t {
  kLoad,       ///< L1 data-load fill
  kStore,      ///< L1 store fill (write-allocate)
  kIFetch,     ///< L1 instruction fill
  kWriteback,  ///< dirty eviction; fire-and-forget
  kPrefetch,   ///< L2-initiated fill; no core is waiting
  // Coherence traffic (coherence=mesi only). GetS/GetM replace kLoad/kStore
  // on the request path; Inv/Downgrade are directory probes carried on the
  // response port (L2 -> CPU); InvAck/WbAck are the matching acknowledgements
  // carried on the request port (CPU -> L2).
  kGetS,       ///< read miss: requester wants Shared (or Exclusive) access
  kGetM,       ///< write miss/upgrade: requester wants Modified access
  kInv,        ///< directory probe: invalidate the line in the target L1
  kDowngrade,  ///< directory probe: demote M/E to Shared in the target L1
  kInvAck,     ///< ack for kInv (dirty_data: the probed copy was dirty)
  kWbAck,      ///< ack for kDowngrade (dirty_data: writeback carried along)
};

inline const char* mem_op_name(MemOp op) {
  switch (op) {
    case MemOp::kLoad: return "load";
    case MemOp::kStore: return "store";
    case MemOp::kIFetch: return "ifetch";
    case MemOp::kWriteback: return "writeback";
    case MemOp::kPrefetch: return "prefetch";
    case MemOp::kGetS: return "gets";
    case MemOp::kGetM: return "getm";
    case MemOp::kInv: return "inv";
    case MemOp::kDowngrade: return "downgrade";
    case MemOp::kInvAck: return "inv_ack";
    case MemOp::kWbAck: return "wb_ack";
  }
  return "?";
}

/// Access permission granted by the directory with a coherent fill.
enum class CohGrant : std::uint8_t {
  kNone,       ///< non-coherent response (coherence=none, ifetch, prefetch)
  kShared,     ///< read permission; other sharers may exist
  kExclusive,  ///< read permission, sole copy; may upgrade to M silently
  kModified,   ///< write permission, sole copy
};

inline const char* coh_grant_name(CohGrant grant) {
  switch (grant) {
    case CohGrant::kNone: return "none";
    case CohGrant::kShared: return "shared";
    case CohGrant::kExclusive: return "exclusive";
    case CohGrant::kModified: return "modified";
  }
  return "?";
}

/// A request travelling down the hierarchy (CPU -> L2 -> MC).
struct MemRequest {
  Addr line_addr = 0;
  MemOp op = MemOp::kLoad;
  CoreId core = kInvalidCore;  ///< originating core (kInvalidCore: L2-originated)
  TileId src_tile = 0;         ///< tile of the originator (NoC latency)
  BankId src_bank = 0;         ///< set by the L2 bank when forwarding to a MC
  bool dirty_data = false;     ///< ack ops: probed L1 copy was dirty
};

/// A response travelling back up (MC -> L2, or L2 -> CPU). For kInv /
/// kDowngrade probes, `core` is the probe *target* and `grant` is unused.
struct MemResponse {
  Addr line_addr = 0;
  MemOp op = MemOp::kLoad;
  CoreId core = kInvalidCore;
  CohGrant grant = CohGrant::kNone;
};

// ----- message sizing (contended-NoC flit model) ------------------------
// Every message carries a fixed header (address, op, routing metadata); data
// messages additionally carry one cache line. The contended mesh serializes
// messages into flits of NocConfig::flit_bytes each.

inline constexpr std::uint32_t kMsgHeaderBytes = 16;

/// Requests carrying a full line of data: dirty evictions and probe acks
/// that fold a dirty copy into the ack.
inline bool request_carries_data(const MemRequest& request) {
  if (request.op == MemOp::kWriteback) return true;
  return (request.op == MemOp::kInvAck || request.op == MemOp::kWbAck) &&
         request.dirty_data;
}

/// Responses carrying a full line: every fill. Probes (kInv / kDowngrade)
/// are control-only.
inline bool response_carries_data(const MemResponse& response) {
  return response.op != MemOp::kInv && response.op != MemOp::kDowngrade;
}

inline std::uint32_t message_bytes(const MemRequest& request,
                                   std::uint32_t line_bytes) {
  return kMsgHeaderBytes + (request_carries_data(request) ? line_bytes : 0);
}

inline std::uint32_t message_bytes(const MemResponse& response,
                                   std::uint32_t line_bytes) {
  return kMsgHeaderBytes + (response_carries_data(response) ? line_bytes : 0);
}

/// Flits needed for `bytes` of message at `flit_bytes` per flit (>= 1).
inline std::uint32_t flits_for(std::uint32_t bytes, std::uint32_t flit_bytes) {
  if (flit_bytes == 0) return 1;
  const std::uint32_t flits = (bytes + flit_bytes - 1) / flit_bytes;
  return flits == 0 ? 1 : flits;
}

}  // namespace coyote::memhier
