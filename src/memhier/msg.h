// Messages exchanged between the CPU side (Orchestrator), the L2 banks and
// the memory controllers. All traffic is at cache-line granularity.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace coyote::memhier {

enum class MemOp : std::uint8_t {
  kLoad,       ///< L1 data-load fill
  kStore,      ///< L1 store fill (write-allocate)
  kIFetch,     ///< L1 instruction fill
  kWriteback,  ///< dirty eviction; fire-and-forget
  kPrefetch,   ///< L2-initiated fill; no core is waiting
};

inline const char* mem_op_name(MemOp op) {
  switch (op) {
    case MemOp::kLoad: return "load";
    case MemOp::kStore: return "store";
    case MemOp::kIFetch: return "ifetch";
    case MemOp::kWriteback: return "writeback";
    case MemOp::kPrefetch: return "prefetch";
  }
  return "?";
}

/// A request travelling down the hierarchy (CPU -> L2 -> MC).
struct MemRequest {
  Addr line_addr = 0;
  MemOp op = MemOp::kLoad;
  CoreId core = kInvalidCore;  ///< originating core (kInvalidCore: L2-originated)
  TileId src_tile = 0;         ///< tile of the originator (NoC latency)
  BankId src_bank = 0;         ///< set by the L2 bank when forwarding to a MC
};

/// A response travelling back up (MC -> L2, or L2 -> CPU).
struct MemResponse {
  Addr line_addr = 0;
  MemOp op = MemOp::kLoad;
  CoreId core = kInvalidCore;
};

}  // namespace coyote::memhier
