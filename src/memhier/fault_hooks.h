// Injection points the memory hierarchy exposes to the fault-injection
// engine (src/fault). memhier only ever *consults* this interface — the
// engine implementing it lives in a higher layer, so the dependency points
// upward and a build without fault support pays nothing (a null hook
// pointer short-circuits every check).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "memhier/msg.h"

namespace coyote::memhier {

/// What should happen to one response message about to enter the NoC.
struct NetVerdict {
  bool drop = false;  ///< lose this copy of the message in flight
  Cycle delay = 0;    ///< extra in-flight latency (ignored when dropped)
};

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  /// An L2 bank (directory) is about to send `resp` towards a core.
  /// `attempt` is 0 for the original transmission and counts retransmits;
  /// the engine only ever plans drops against attempt 0, which bounds the
  /// retransmit protocol.
  virtual NetVerdict on_response_send(const MemResponse& resp, BankId bank,
                                      std::uint32_t attempt) = 0;

  /// Extra service delay for one read at memory controller `mc`
  /// (a transient controller stall); 0 = no fault.
  virtual Cycle mc_extra_delay(McId mc) = 0;
};

}  // namespace coyote::memhier
