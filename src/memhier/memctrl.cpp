#include "memhier/memctrl.h"

namespace coyote::memhier {

MemoryController::MemoryController(simfw::Unit* parent, std::string name,
                                   McId mc_id, const MemCtrlConfig& config,
                                   Noc* noc, std::uint32_t num_l2_banks)
    : simfw::Unit(parent, std::move(name)),
      mc_id_(mc_id),
      config_(config),
      noc_(noc),
      req_in_(this, "req_in"),
      reads_(stats().counter("reads", "line reads serviced")),
      writes_(stats().counter("writes", "line writes (writebacks) absorbed")),
      row_hits_(stats().counter("row_hits", "row-buffer hits (DRAM model)")),
      row_misses_(
          stats().counter("row_misses", "row-buffer misses (DRAM model)")),
      queue_delay_cycles_(stats().counter(
          "queue_delay_cycles", "cycles requests waited for a service slot")),
      queue_delay_(stats().distribution(
          "queue_delay", "per-request service-slot wait distribution")) {
  if (noc_ == nullptr) throw ConfigError("MemoryController: needs a NoC");
  if (config_.model == McModel::kDramRowBuffer) {
    if (!is_pow2(config_.row_bytes) || config_.dram_banks == 0) {
      throw ConfigError("MemoryController: bad DRAM geometry");
    }
    row_shift_ = log2_exact(config_.row_bytes);
    open_rows_.assign(config_.dram_banks, ~Addr{0});
  }
  resp_out_.reserve(num_l2_banks);
  for (BankId bank = 0; bank < num_l2_banks; ++bank) {
    resp_out_.push_back(std::make_unique<simfw::DataOutPort<MemResponse>>(
        this, strfmt("resp_out%u", bank)));
  }
  req_in_.register_handler(
      [this](const MemRequest& request) { on_request(request); });
}

Cycle MemoryController::service_latency(Addr line_addr) {
  switch (config_.model) {
    case McModel::kFixedLatency:
      return config_.latency;
    case McModel::kDramRowBuffer: {
      const std::size_t bank =
          (line_addr >> line_shift_) % config_.dram_banks;
      const Addr row = line_addr >> row_shift_;
      if (open_rows_[bank] == row) {
        ++row_hits_;
        return config_.row_hit_latency;
      }
      ++row_misses_;
      open_rows_[bank] = row;
      return config_.row_miss_latency;
    }
  }
  return config_.latency;
}

void MemoryController::on_request(const MemRequest& request) {
  const Cycle now = scheduler().now();
  Cycle queue_delay = 0;
  if (config_.cycles_per_request != 0) {
    const Cycle start = std::max(now, next_free_);
    queue_delay = start - now;
    queue_delay_cycles_ += queue_delay;
    queue_delay_.sample(queue_delay);
    next_free_ = start + config_.cycles_per_request;
  }

  if (request.op == MemOp::kWriteback) {
    ++writes_;
    (void)service_latency(request.line_addr);  // occupies the row buffer too
    return;  // fire-and-forget
  }

  ++reads_;
  Cycle latency = queue_delay + service_latency(request.line_addr);
  if (fault_hooks_ != nullptr) {
    const Cycle stall = fault_hooks_->mc_extra_delay(mc_id_);
    if (stall != 0) {
      ++fault_stalls_;
      latency += stall;
    }
  }
  const MemResponse response{request.line_addr, request.op, request.core};
  if (noc_->contended()) {
    auto* port = resp_out_[request.src_bank].get();
    noc_->transmit(noc_->mc_node(mc_id_), noc_->tile_node(request.src_tile),
                   noc_->message_bytes(response), latency, response.core,
                   [port, response]() { port->deliver_now(response); });
    return;
  }
  resp_out_[request.src_bank]->send(
      response, latency + noc_->traverse(noc_->mc_node(mc_id_),
                                         noc_->tile_node(request.src_tile)));
}

}  // namespace coyote::memhier
