#include "memhier/mesh_router.h"

#include <algorithm>

#include "common/binio.h"
#include "common/error.h"

namespace coyote::memhier {

namespace {
constexpr const char* kDirName[4] = {"e", "w", "n", "s"};
}  // namespace

MeshRouterNet::MeshRouterNet(simfw::Scheduler* scheduler, const Config& config,
                             simfw::StatisticSet& stats)
    : sched_(scheduler), config_(config) {
  if (config_.width == 0 || config_.height == 0) {
    throw ConfigError("MeshRouterNet: zero mesh dimension");
  }
  if (config_.router_latency == 0) {
    throw ConfigError("MeshRouterNet: router_latency must be >= 1");
  }
  num_nodes_ = config_.width * config_.height;
  links_.resize(static_cast<std::size_t>(num_nodes_) * 4);
  delivered_ = &stats.counter("delivered", "messages delivered by the mesh");
  total_flits_ = &stats.counter("flits", "flits forwarded over all links");
  total_wait_ =
      &stats.counter("wait_cycles", "message-cycles spent waiting for links");
  peak_queue_ =
      &stats.counter("peak_queue_flits", "peak flits queued at any one link");
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    const std::uint32_t x = node_x(n);
    const std::uint32_t y = node_y(n);
    for (std::uint8_t d = 0; d < 4; ++d) {
      Link& l = links_[link_id(n, d)];
      switch (d) {
        case kEast:
          if (x + 1 >= config_.width) continue;
          l.to = n + 1;
          break;
        case kWest:
          if (x == 0) continue;
          l.to = n - 1;
          break;
        case kNorth:
          if (y == 0) continue;
          l.to = n - config_.width;
          break;
        case kSouth:
          if (y + 1 >= config_.height) continue;
          l.to = n + config_.width;
          break;
      }
      l.exists = true;
      l.credits = config_.buffer_flits;
      ++num_links_;
      const std::string base =
          "link" + std::to_string(n) + "_" + kDirName[d] + "_";
      l.flits = &stats.counter(base + "flits", "flits forwarded");
      l.busy_cycles =
          &stats.counter(base + "busy_cycles", "cycles transmitting");
      l.wait_cycles =
          &stats.counter(base + "wait_cycles", "message-cycles waited");
      l.peak_queue = &stats.counter(base + "peak_queue_flits",
                                    "peak flits queued for this link");
    }
  }
}

MeshRouterNet::~MeshRouterNet() {
  for (Msg* m : in_flight_) delete m;
}

void MeshRouterNet::inject(std::uint32_t src, std::uint32_t dst,
                           std::uint32_t flits, Cycle pre_delay, CoreId core,
                           std::function<void()> deliver) {
  if (src >= num_nodes_ || dst >= num_nodes_) {
    throw SimError(strfmt("MeshRouterNet: node out of range (src %u dst %u, "
                          "%u nodes)",
                          src, dst, num_nodes_));
  }
  Msg* m = new Msg;
  m->dst = dst;
  m->flits = flits == 0 ? 1 : flits;
  m->core = core;
  m->deliver = std::move(deliver);
  m->seq = next_seq_++;
  in_flight_.insert(m);
  sched_->schedule(pre_delay + config_.router_latency,
                   simfw::SchedPriority::kPortDelivery,
                   [this, m, src] { on_arrival(m, src); });
}

std::uint8_t MeshRouterNet::next_dir(std::uint32_t node,
                                     std::uint32_t dst) const {
  const std::uint32_t x = node_x(node);
  const std::uint32_t y = node_y(node);
  const std::uint32_t dx = node_x(dst);
  const std::uint32_t dy = node_y(dst);
  if (x < dx) return kEast;
  if (x > dx) return kWest;
  if (y > dy) return kNorth;
  return kSouth;
}

bool MeshRouterNet::has_queued(const Link& l) const {
  for (const auto& q : l.queues) {
    if (!q.empty()) return true;
  }
  return false;
}

void MeshRouterNet::on_arrival(Msg* m, std::uint32_t node) {
  if (node == m->dst) {
    release_held(m, sched_->now());
    push_ready(m);
    return;
  }
  const std::uint8_t dir = next_dir(node, m->dst);
  const std::uint8_t in_port = m->held_link == kNoLink
                                   ? kLocal
                                   : static_cast<std::uint8_t>(
                                         (m->held_link & 3) ^ 1);
  request_link(m, node, dir, in_port);
}

void MeshRouterNet::request_link(Msg* m, std::uint32_t node, std::uint8_t dir,
                                 std::uint8_t in_port) {
  const std::uint32_t lid = link_id(node, dir);
  Link& l = links_[lid];
  if (!l.exists) {
    throw SimError(strfmt("MeshRouterNet: route off the mesh at node %u "
                          "(dir %s towards node %u)",
                          node, kDirName[dir], m->dst));
  }
  m->enqueued_at = sched_->now();
  l.queues[in_port].push_back(m);
  l.queued_flits += m->flits;
  if (l.queued_flits > l.peak_queue->get()) {
    l.peak_queue->set(l.queued_flits);
    if (l.queued_flits > peak_queue_->get()) peak_queue_->set(l.queued_flits);
  }
  schedule_arb(lid, sched_->now());
}

void MeshRouterNet::schedule_arb(std::uint32_t lid, Cycle at) {
  Link& l = links_[lid];
  if (at < sched_->now()) at = sched_->now();
  if (l.arb_at != kNoCycle && l.arb_at <= at) return;
  l.arb_at = at;
  sched_->schedule_at(at, simfw::SchedPriority::kPortDelivery,
                      [this, lid, at] {
                        Link& link = links_[lid];
                        if (link.arb_at == at) link.arb_at = kNoCycle;
                        arbitrate(lid);
                      });
}

void MeshRouterNet::arbitrate(std::uint32_t lid) {
  Link& l = links_[lid];
  const Cycle now = sched_->now();
  while (true) {
    if (config_.link_bandwidth != 0 && l.next_free > now) break;
    int pick = -1;
    for (int i = 0; i < static_cast<int>(kNumInPorts); ++i) {
      const int q = (l.rr + i) % static_cast<int>(kNumInPorts);
      if (l.queues[q].empty()) continue;
      const Msg* head = l.queues[q].front();
      if (config_.buffer_flits != 0 && l.credits < head->flits) continue;
      pick = q;
      break;
    }
    if (pick < 0) break;
    Msg* m = l.queues[pick].front();
    l.queues[pick].pop_front();
    l.rr = static_cast<std::uint8_t>((pick + 1) % kNumInPorts);
    grant(lid, m, now);
  }
  // Bandwidth-limited: come back the cycle the link frees up if work waits.
  if (config_.link_bandwidth != 0 && l.next_free > now && has_queued(l)) {
    schedule_arb(lid, l.next_free);
  }
}

void MeshRouterNet::grant(std::uint32_t lid, Msg* m, Cycle now) {
  Link& l = links_[lid];
  const Cycle waited = now - m->enqueued_at;
  if (waited != 0) {
    *l.wait_cycles += waited;
    *total_wait_ += waited;
    if (congestion_sink_ && m->core != kInvalidCore) {
      congestion_sink_(now, m->core, waited);
    }
  }
  if (config_.buffer_flits != 0) l.credits -= m->flits;
  release_held(m, now);
  m->held_link = lid;
  const Cycle occupancy =
      config_.link_bandwidth == 0
          ? 0
          : (m->flits + config_.link_bandwidth - 1) / config_.link_bandwidth;
  if (occupancy != 0) {
    l.next_free = now + occupancy;
    *l.busy_cycles += occupancy;
  }
  *l.flits += m->flits;
  *total_flits_ += m->flits;
  l.queued_flits -= m->flits;
  const std::uint32_t to = l.to;
  sched_->schedule(config_.hop_latency, simfw::SchedPriority::kPortDelivery,
                   [this, m, to] { on_arrival(m, to); });
}

void MeshRouterNet::release_held(Msg* m, Cycle now) {
  if (m->held_link == kNoLink) return;
  if (config_.buffer_flits != 0) {
    Link& upstream = links_[m->held_link];
    upstream.credits += m->flits;
    // Freed buffer space may unblock a credit-starved head upstream.
    if (has_queued(upstream)) schedule_arb(m->held_link, now);
  }
  m->held_link = kNoLink;
}

void MeshRouterNet::push_ready(Msg* m) {
  ready_.push_back(m);
  const Cycle now = sched_->now();
  if (drain_scheduled_for_ == now) return;
  drain_scheduled_for_ = now;
  sched_->schedule(0, simfw::SchedPriority::kPortDelivery, [this, now] {
    if (drain_scheduled_for_ == now) drain_scheduled_for_ = kNoCycle;
    drain();
  });
}

void MeshRouterNet::drain() {
  // Same-cycle deliveries run in injection order, which is exactly the order
  // the fixed-latency models' per-message events would fire in — keeping the
  // degenerate (infinite buffers + bandwidth) mesh handler-for-handler
  // identical to the hop-latency oracle.
  std::vector<Msg*> batch;
  batch.swap(ready_);
  std::sort(batch.begin(), batch.end(),
            [](const Msg* a, const Msg* b) { return a->seq < b->seq; });
  for (Msg* m : batch) {
    ++*delivered_;
    auto deliver = std::move(m->deliver);
    in_flight_.erase(m);
    delete m;
    deliver();
  }
}

void MeshRouterNet::save_state(BinWriter& w) const {
  if (!quiescent()) {
    throw SimError("MeshRouterNet: checkpoint with messages in flight");
  }
  for (const Link& l : links_) {
    if (!l.exists) continue;
    w.u64(l.next_free);
    w.u8(l.rr);
  }
}

void MeshRouterNet::load_state(BinReader& r) {
  for (Link& l : links_) {
    if (!l.exists) continue;
    l.next_free = r.u64();
    l.rr = r.u8();
    if (l.rr >= kNumInPorts) {
      throw SimError("MeshRouterNet: corrupt round-robin pointer");
    }
  }
}

}  // namespace coyote::memhier
