// Network-on-chip model. As in the paper, the default is a highly idealized
// crossbar with fixed, configurable latencies: the NoC acts as a latency
// oracle (every port send through the hierarchy asks it for a delay) and as
// a statistics collector. A 2D-mesh hop-latency model is provided as the
// extension the paper lists as work-in-progress.
#pragma once

#include <cstdint>

#include "common/error.h"
#include "simfw/unit.h"

namespace coyote::memhier {

enum class NocModel : std::uint8_t { kIdealCrossbar, kMesh2D };

struct NocConfig {
  NocModel model = NocModel::kIdealCrossbar;
  /// Crossbar: every traversal costs this many cycles.
  Cycle crossbar_latency = 4;
  /// Mesh: cost = router_latency + hop_latency * manhattan-distance.
  Cycle mesh_router_latency = 2;
  Cycle mesh_hop_latency = 1;
  /// Mesh geometry: nodes are tiles plus MCs laid out on a rectangle edge;
  /// mesh_width is the number of columns of the tile grid.
  std::uint32_t mesh_width = 4;
};

/// Logical NoC endpoints. Tiles occupy node ids [0, num_tiles); memory
/// controllers occupy [num_tiles, num_tiles + num_mcs).
class Noc : public simfw::Unit {
 public:
  Noc(simfw::Unit* parent, const NocConfig& config, std::uint32_t num_tiles,
      std::uint32_t num_mcs)
      : simfw::Unit(parent, "noc"),
        config_(config),
        num_tiles_(num_tiles),
        num_mcs_(num_mcs),
        messages_(stats().counter("messages", "messages traversing the NoC")),
        hops_(stats().counter("hops", "total router hops (mesh model)")) {
    if (config.model == NocModel::kMesh2D && config.mesh_width == 0) {
      throw ConfigError("Noc: mesh_width must be nonzero");
    }
  }

  const NocConfig& config() const { return config_; }

  std::uint32_t tile_node(TileId tile) const { return tile; }
  std::uint32_t mc_node(McId mc) const { return num_tiles_ + mc; }

  /// Latency of one message from `src` to `dst` node; records statistics.
  Cycle traverse(std::uint32_t src, std::uint32_t dst) {
    ++messages_;
    switch (config_.model) {
      case NocModel::kIdealCrossbar:
        return config_.crossbar_latency;
      case NocModel::kMesh2D: {
        const std::uint32_t hops = manhattan(src, dst);
        hops_ += hops;
        return config_.mesh_router_latency +
               config_.mesh_hop_latency * static_cast<Cycle>(hops);
      }
    }
    return config_.crossbar_latency;
  }

  /// Statistics half of traverse() for callers that cached the latency via
  /// latency()/hops(): hot paths precompute per-route delay tables once and
  /// account each message here, keeping the counters identical to a
  /// traverse() call without recomputing the route.
  void record_traversal(std::uint32_t hops) {
    ++messages_;
    if (hops != 0) hops_ += hops;
  }

  /// Router hops charged to the hops statistic for one src->dst message
  /// (zero for the crossbar model, matching traverse()).
  std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const {
    return config_.model == NocModel::kMesh2D ? manhattan(src, dst) : 0;
  }

  /// Pure latency query (no statistics side effect).
  Cycle latency(std::uint32_t src, std::uint32_t dst) const {
    switch (config_.model) {
      case NocModel::kIdealCrossbar:
        return config_.crossbar_latency;
      case NocModel::kMesh2D:
        return config_.mesh_router_latency +
               config_.mesh_hop_latency * static_cast<Cycle>(manhattan(src, dst));
    }
    return config_.crossbar_latency;
  }

 private:
  std::uint32_t manhattan(std::uint32_t src, std::uint32_t dst) const {
    const auto sx = src % config_.mesh_width;
    const auto sy = src / config_.mesh_width;
    const auto dx = dst % config_.mesh_width;
    const auto dy = dst / config_.mesh_width;
    return (sx > dx ? sx - dx : dx - sx) + (sy > dy ? sy - dy : dy - sy);
  }

  NocConfig config_;
  std::uint32_t num_tiles_;
  std::uint32_t num_mcs_;
  simfw::Counter& messages_;
  simfw::Counter& hops_;
};

}  // namespace coyote::memhier
