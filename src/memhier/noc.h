// Network-on-chip model. As in the paper, the default is a highly idealized
// crossbar with fixed, configurable latencies: the NoC acts as a latency
// oracle (every port send through the hierarchy asks it for a delay) and as
// a statistics collector. Two mesh models extend it: `mesh-oracle`, the
// uncontended Manhattan-distance hop-latency formula the paper lists as
// work-in-progress, and `mesh`, an event-driven contended 2D mesh with
// per-link buffering, bandwidth, XY routing, round-robin arbitration and
// credit-based backpressure (see mesh_router.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/error.h"
#include "memhier/msg.h"
#include "simfw/unit.h"

namespace coyote {
class BinWriter;
class BinReader;
}  // namespace coyote

namespace coyote::memhier {

class MeshRouterNet;

enum class NocModel : std::uint8_t {
  kIdealCrossbar = 0,
  kMeshOracle = 1,  ///< uncontended hop-latency formula (legacy kMesh2D)
  kMesh2D = 2,      ///< contended mesh: buffers, bandwidth, arbitration
};

struct NocConfig {
  NocModel model = NocModel::kIdealCrossbar;
  /// Crossbar: every traversal costs this many cycles.
  Cycle crossbar_latency = 4;
  /// Mesh: uncontended cost = router_latency + hop_latency * manhattan.
  Cycle mesh_router_latency = 2;
  Cycle mesh_hop_latency = 1;
  /// Mesh geometry: nodes are tiles plus MCs laid out row-major on a
  /// mesh_width x mesh_height rectangle (MCs land on the bottom edge);
  /// mesh_height == 0 derives the minimal height that seats every node.
  std::uint32_t mesh_width = 4;
  std::uint32_t mesh_height = 0;
  /// Contended mesh only: per-link bandwidth in flits/cycle (0 = infinite),
  /// per-link input-buffer depth in flits (0 = infinite), flit payload size.
  std::uint64_t link_bandwidth = 1;
  std::uint32_t buffer_flits = 8;
  std::uint32_t flit_bytes = 16;
};

/// Logical NoC endpoints. Tiles occupy node ids [0, num_tiles); memory
/// controllers occupy [num_tiles, num_tiles + num_mcs).
class Noc : public simfw::Unit {
 public:
  Noc(simfw::Unit* parent, const NocConfig& config, std::uint32_t num_tiles,
      std::uint32_t num_mcs, std::uint32_t line_bytes = 64);
  ~Noc() override;

  const NocConfig& config() const { return config_; }

  std::uint32_t tile_node(TileId tile) const { return tile; }
  std::uint32_t mc_node(McId mc) const { return num_tiles_ + mc; }

  /// True for the contended mesh: call sites must route messages through
  /// transmit() instead of adding a traverse() latency to a port send.
  bool contended() const { return config_.model == NocModel::kMesh2D; }

  /// Latency of one message from `src` to `dst` node; records statistics.
  /// Only meaningful for the fixed-latency models — throws on the contended
  /// mesh, where delivery time is an emergent property of the network state.
  Cycle traverse(std::uint32_t src, std::uint32_t dst);

  /// Statistics half of traverse() for callers that cached the latency via
  /// latency()/hops(): hot paths precompute per-route delay tables once and
  /// account each message here, keeping the counters identical to a
  /// traverse() call without recomputing the route.
  void record_traversal(std::uint32_t hops) {
    ++messages_;
    if (hops != 0) hops_ += hops;
  }

  /// Router hops charged to the hops statistic for one src->dst message
  /// (zero for the crossbar model, matching traverse()).
  std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const {
    return config_.model == NocModel::kIdealCrossbar ? 0 : manhattan(src, dst);
  }

  /// Pure latency query (no statistics side effect). For the contended mesh
  /// this is the uncontended floor (empty-network delivery time).
  Cycle latency(std::uint32_t src, std::uint32_t dst) const {
    if (config_.model == NocModel::kIdealCrossbar) {
      return config_.crossbar_latency;
    }
    return config_.mesh_router_latency +
           config_.mesh_hop_latency * static_cast<Cycle>(manhattan(src, dst));
  }

  // ----- contended mesh -------------------------------------------------

  /// Message size in bytes under the flit model (header + line for data).
  std::uint32_t message_bytes(const MemRequest& request) const {
    return memhier::message_bytes(request, line_bytes_);
  }
  std::uint32_t message_bytes(const MemResponse& response) const {
    return memhier::message_bytes(response, line_bytes_);
  }

  /// Injects a message into the contended mesh `pre_delay` cycles from now;
  /// `deliver` runs at the (emergent) delivery cycle. Counts the same
  /// messages/hops statistics as traverse(). Requires contended().
  void transmit(std::uint32_t src, std::uint32_t dst, std::uint32_t bytes,
                Cycle pre_delay, CoreId core, std::function<void()> deliver);

  /// Observer for link-contention events (Paraver congestion trace):
  /// (grant cycle, originating core, cycles waited). Requires contended().
  void set_congestion_sink(
      std::function<void(Cycle, CoreId, std::uint64_t)> sink);

  /// True iff no message is anywhere in the network (always true for the
  /// fixed-latency models, whose messages live on the calendar queue).
  bool quiescent() const;

  /// Contended-mesh residual state (per-link next-free cycles, round-robin
  /// pointers) for checkpoints cut at quiesce. No-ops for other models.
  void save_state(BinWriter& w) const;
  void load_state(BinReader& r);

  /// Resolved mesh height (explicit, or derived from the node count).
  std::uint32_t mesh_height() const { return mesh_height_; }

  /// Aggregate mesh statistics as a JSON object (run-summary "noc" block).
  /// Requires contended().
  std::string summary_json() const;

 private:
  std::uint32_t manhattan(std::uint32_t src, std::uint32_t dst) const {
    const auto sx = src % config_.mesh_width;
    const auto sy = src / config_.mesh_width;
    const auto dx = dst % config_.mesh_width;
    const auto dy = dst / config_.mesh_width;
    return (sx > dx ? sx - dx : dx - sx) + (sy > dy ? sy - dy : dy - sy);
  }

  NocConfig config_;
  std::uint32_t num_tiles_;
  std::uint32_t num_mcs_;
  std::uint32_t line_bytes_;
  std::uint32_t mesh_height_ = 0;
  simfw::Counter& messages_;
  simfw::Counter& hops_;
  std::unique_ptr<MeshRouterNet> net_;  ///< non-null iff contended()
};

}  // namespace coyote::memhier
