// Data-mapping policies: which L2 bank holds a cache line. The paper
// implements the two classic policies — page-to-bank (consecutive pages
// rotate across banks; a page's lines all live in one bank) and
// set-interleaving (consecutive lines rotate across banks).
#pragma once

#include <cstdint>
#include <string>

#include "common/bits.h"
#include "common/error.h"
#include "common/types.h"

namespace coyote::memhier {

enum class MappingPolicy : std::uint8_t {
  kPageToBank,
  kSetInterleave,
};

inline const char* mapping_policy_name(MappingPolicy policy) {
  switch (policy) {
    case MappingPolicy::kPageToBank: return "page-to-bank";
    case MappingPolicy::kSetInterleave: return "set-interleave";
  }
  return "?";
}

inline MappingPolicy mapping_policy_from_string(const std::string& name) {
  if (name == "page-to-bank") return MappingPolicy::kPageToBank;
  if (name == "set-interleave") return MappingPolicy::kSetInterleave;
  throw ConfigError(strfmt("unknown mapping policy '%s'", name.c_str()));
}

/// Stateless bank selector.
class BankMapper {
 public:
  BankMapper(MappingPolicy policy, std::uint32_t num_banks,
             std::uint32_t line_bytes, std::uint32_t page_bytes = 4096)
      : policy_(policy),
        num_banks_(num_banks),
        line_shift_(log2_exact(line_bytes)),
        page_shift_(log2_exact(page_bytes)) {
    if (num_banks == 0) throw ConfigError("BankMapper: zero banks");
  }

  MappingPolicy policy() const { return policy_; }
  std::uint32_t num_banks() const { return num_banks_; }

  /// Bank index in [0, num_banks) for `line_addr`.
  BankId bank_of(Addr line_addr) const {
    switch (policy_) {
      case MappingPolicy::kPageToBank:
        return static_cast<BankId>((line_addr >> page_shift_) % num_banks_);
      case MappingPolicy::kSetInterleave:
        return static_cast<BankId>((line_addr >> line_shift_) % num_banks_);
    }
    return 0;
  }

 private:
  MappingPolicy policy_;
  std::uint32_t num_banks_;
  unsigned line_shift_;
  unsigned page_shift_;
};

/// Line-interleaved assignment of lines to memory controllers, with a
/// configurable interleaving granularity (>= line size).
class McMapper {
 public:
  McMapper(std::uint32_t num_mcs, std::uint32_t granule_bytes)
      : num_mcs_(num_mcs), granule_shift_(log2_exact(granule_bytes)) {
    if (num_mcs == 0) throw ConfigError("McMapper: zero controllers");
  }

  std::uint32_t num_mcs() const { return num_mcs_; }

  McId mc_of(Addr line_addr) const {
    return static_cast<McId>((line_addr >> granule_shift_) % num_mcs_);
  }

 private:
  std::uint32_t num_mcs_;
  unsigned granule_shift_;
};

}  // namespace coyote::memhier
