// Last-level cache slice. The paper's sample system (Fig. 2) has *three*
// cache levels — core-private L1s, banked L2, and an LLC in front of each
// memory channel. This unit models one memory-side LLC slice co-located
// with its memory controller: requests that miss every L2 bank are filtered
// here before reaching DRAM.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "memhier/cache_array.h"
#include "memhier/msg.h"
#include "memhier/noc.h"
#include "simfw/port.h"

namespace coyote::memhier {

struct LlcConfig {
  bool enable = false;
  std::uint64_t size_bytes = 2 * 1024 * 1024;  ///< per slice
  std::uint32_t ways = 16;
  std::uint32_t line_bytes = 64;
  Cycle hit_latency = 20;
  Cycle miss_latency = 4;  ///< lookup-to-forward on a miss
  Replacement replacement = Replacement::kLru;
};

class LlcSlice : public simfw::Unit {
 public:
  LlcSlice(simfw::Unit* parent, std::string name, McId mc_id,
           const LlcConfig& config, Noc* noc, std::uint32_t num_l2_banks);

  McId mc_id() const { return mc_id_; }

  simfw::DataInPort<MemRequest>& req_in() { return req_in_; }
  /// One response port per L2 bank (slices respond on behalf of memory).
  simfw::DataOutPort<MemResponse>& resp_out(BankId bank) {
    return *resp_out_.at(bank);
  }
  simfw::DataOutPort<MemRequest>& mem_req_out() { return mem_req_out_; }
  simfw::DataInPort<MemResponse>& mem_resp_in() { return mem_resp_in_; }

  bool contains(Addr line_addr) const { return array_.probe(line_addr); }

  /// Raw tag array, exposed for fast-forward warm-up and checkpointing.
  CacheArray& array() { return array_; }

  /// Checkpoint: the tag array. Only legal at a quiesce point — throws
  /// SimError if any miss is in flight. Counters live in the stats tree.
  void save_state(BinWriter& w) const {
    if (!mshrs_.empty()) {
      throw SimError("LlcSlice: checkpoint with misses in flight — "
                     "checkpoints are only legal at quiesce points");
    }
    array_.save_state(w);
  }
  void load_state(BinReader& r) {
    array_.load_state(r);
    mshrs_.clear();
  }

 private:
  void on_request(const MemRequest& request);
  void on_mem_response(const MemResponse& response);
  void insert_line(Addr line_addr, bool dirty);
  void respond(const MemRequest& request, Cycle delay);

  McId mc_id_;
  LlcConfig config_;
  CacheArray array_;
  Noc* noc_;

  simfw::DataInPort<MemRequest> req_in_;
  std::vector<std::unique_ptr<simfw::DataOutPort<MemResponse>>> resp_out_;
  simfw::DataOutPort<MemRequest> mem_req_out_;
  simfw::DataInPort<MemResponse> mem_resp_in_;

  std::unordered_map<Addr, std::vector<MemRequest>> mshrs_;

  simfw::Counter& accesses_;
  simfw::Counter& hits_;
  simfw::Counter& misses_;
  simfw::Counter& writebacks_in_;
  simfw::Counter& writebacks_out_;
  simfw::Counter& evictions_;
};

}  // namespace coyote::memhier
